// Reproduction anchor: the accept/reject matrix of the paper's Tables 1-3
// (Section 6) on the A(H)=10 device, under both the double and the exact
// BigRational evaluation paths, plus the worked-example intermediate values
// the paper prints (U_S = 4.94, DP RHS = 4.85, GN1 RHS = 20/7, GN2 RHS =
// 5.26, ...).
//
//                DP      GN1     GN2
//   Table 1     accept  reject  reject
//   Table 2     reject  accept  reject
//   Table 3     reject  reject  accept

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "analysis/dp.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "analysis/overhead.hpp"
#include "task/fixtures.hpp"

namespace reconf::analysis {
namespace {

using fixtures::paper_device_small;
using fixtures::paper_table1;
using fixtures::paper_table2;
using fixtures::paper_table3;

// ---------------------------------------------------------------- Table 1 --
TEST(PaperTable1, DpAccepts) {
  const auto r = dp_test(paper_table1(), paper_device_small());
  EXPECT_TRUE(r.accepted()) << r.note;
}

TEST(PaperTable1, DpAcceptsExactlyAtTheKnifeEdge) {
  // k=2 sits at exact equality U_S = RHS = 69/25; the exact path must agree.
  const auto r = dp_test_exact(paper_table1(), paper_device_small());
  EXPECT_TRUE(r.accepted());
  ASSERT_EQ(r.per_task.size(), 2u);
  EXPECT_NEAR(r.per_task[1].lhs, 2.76, 1e-9);
  EXPECT_NEAR(r.per_task[1].rhs, 2.76, 1e-9);
}

TEST(PaperTable1, Gn1Rejects) {
  const auto r = gn1_test(paper_table1(), paper_device_small());
  EXPECT_FALSE(r.accepted());
  ASSERT_TRUE(r.first_failing_task.has_value());
  EXPECT_EQ(*r.first_failing_task, 0u);  // fails at k=1
}

TEST(PaperTable1, Gn2Rejects) {
  const auto r = gn2_test(paper_table1(), paper_device_small());
  EXPECT_FALSE(r.accepted());
}

TEST(PaperTable1, Gn2PrintedNonStrictConditionWouldAccept) {
  // The knife-edge the paper's Table 1 sits on: with the printed `≤` in
  // condition 2, the taskset is accepted at exact equality — contradicting
  // the paper's own verdict. Documents why strict `<` is the default.
  Gn2Options printed;
  printed.non_strict_condition2 = true;
  const auto r = gn2_test_exact(paper_table1(), paper_device_small(), printed);
  EXPECT_TRUE(r.accepted());
}

TEST(PaperTable1, ExactPathsAgreeWithDoublePaths) {
  EXPECT_EQ(dp_test(paper_table1(), paper_device_small()).accepted(),
            dp_test_exact(paper_table1(), paper_device_small()).accepted());
  EXPECT_EQ(gn1_test(paper_table1(), paper_device_small()).accepted(),
            gn1_test_exact(paper_table1(), paper_device_small()).accepted());
  EXPECT_EQ(gn2_test(paper_table1(), paper_device_small()).accepted(),
            gn2_test_exact(paper_table1(), paper_device_small()).accepted());
}

// ---------------------------------------------------------------- Table 2 --
TEST(PaperTable2, DpRejects) {
  const auto r = dp_test(paper_table2(), paper_device_small());
  EXPECT_FALSE(r.accepted());
}

TEST(PaperTable2, Gn1Accepts) {
  const auto r = gn1_test(paper_table2(), paper_device_small());
  EXPECT_TRUE(r.accepted());
  // k=1: LHS = 5*(1-4.5/8) = 2.1875, RHS = 8*0.4375 = 3.5.
  ASSERT_EQ(r.per_task.size(), 2u);
  EXPECT_NEAR(r.per_task[0].lhs, 2.1875, 1e-9);
  EXPECT_NEAR(r.per_task[0].rhs, 3.5, 1e-9);
}

TEST(PaperTable2, Gn2Rejects) {
  const auto r = gn2_test(paper_table2(), paper_device_small());
  EXPECT_FALSE(r.accepted());
  ASSERT_TRUE(r.first_failing_task.has_value());
  EXPECT_EQ(*r.first_failing_task, 0u);
}

TEST(PaperTable2, ExactPathsAgreeWithDoublePaths) {
  EXPECT_FALSE(dp_test_exact(paper_table2(), paper_device_small()).accepted());
  EXPECT_TRUE(gn1_test_exact(paper_table2(), paper_device_small()).accepted());
  EXPECT_FALSE(
      gn2_test_exact(paper_table2(), paper_device_small()).accepted());
}

// ---------------------------------------------------------------- Table 3 --
TEST(PaperTable3, DpRejectsWithPaperValues) {
  const auto r = dp_test(paper_table3(), paper_device_small());
  EXPECT_FALSE(r.accepted());
  // Paper: U_S(Γ) = 4.94; at k=2 RHS = 4*(5/7) + 2 ≈ 4.857 ("4.85 < 4.94").
  ASSERT_EQ(r.per_task.size(), 2u);
  EXPECT_NEAR(r.per_task[1].lhs, 4.94, 1e-9);
  EXPECT_NEAR(r.per_task[1].rhs, 4.0 * 5.0 / 7.0 + 2.0, 1e-9);
  ASSERT_TRUE(r.first_failing_task.has_value());
  EXPECT_EQ(*r.first_failing_task, 1u);
}

TEST(PaperTable3, Gn1RejectsWithPaperValues) {
  const auto r = gn1_test(paper_table3(), paper_device_small());
  EXPECT_FALSE(r.accepted());
  // Paper, k=2: RHS = (10-7+1)(1-2/7) = 20/7; LHS = 7*min(4.1/5, 5/7) = 5.
  ASSERT_EQ(r.per_task.size(), 2u);
  EXPECT_NEAR(r.per_task[1].rhs, 20.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.per_task[1].lhs, 5.0, 1e-9);
}

TEST(PaperTable3, Gn2AcceptsWithPaperValues) {
  const auto r = gn2_test(paper_table3(), paper_device_small());
  EXPECT_TRUE(r.accepted());
  // Paper (both k): condition 2 with λ = C1/T1 = 0.42:
  //   RHS = (4-7)(1-0.42) + 7 = 5.26, LHS = 7*0.42 + 7*2/7 = 4.94.
  for (const auto& diag : r.per_task) {
    EXPECT_TRUE(diag.pass);
    EXPECT_EQ(diag.condition, 2);
    EXPECT_NEAR(diag.lambda, 0.42, 1e-9);
    EXPECT_NEAR(diag.rhs, 5.26, 1e-9);
    EXPECT_NEAR(diag.lhs, 4.94, 1e-9);
  }
}

TEST(PaperTable3, ExactPathsAgreeWithDoublePaths) {
  EXPECT_FALSE(dp_test_exact(paper_table3(), paper_device_small()).accepted());
  EXPECT_FALSE(
      gn1_test_exact(paper_table3(), paper_device_small()).accepted());
  EXPECT_TRUE(gn2_test_exact(paper_table3(), paper_device_small()).accepted());
}

// ------------------------------------------------------------- composite --
TEST(Composite, AcceptsAllThreePaperTables) {
  // Section 6: "determine that a taskset is unschedulable only if all tests
  // fail" — each table is accepted by exactly one test, so the composite
  // accepts all three.
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    const auto r = composite_test(ts, paper_device_small());
    EXPECT_TRUE(r.accepted());
  }
}

TEST(Composite, ReportsWhichTestAccepted) {
  EXPECT_EQ(composite_test(paper_table1(), paper_device_small()).accepted_by(),
            "DP");
  EXPECT_EQ(composite_test(paper_table2(), paper_device_small()).accepted_by(),
            "GN1");
  EXPECT_EQ(composite_test(paper_table3(), paper_device_small()).accepted_by(),
            "GN2");
}

TEST(Composite, FkfModeExcludesGn1) {
  // GN1 is only sound for EDF-NF; the EDF-FkF composite must not use it,
  // so Table 2 (accepted only by GN1) becomes inconclusive.
  const auto r = composite_test(paper_table2(), paper_device_small(), {},
                                /*for_fkf=*/true);
  EXPECT_FALSE(r.accepted());
  EXPECT_EQ(r.sub_reports.size(), 2u);
}

// ------------------------------------------------------ variant behaviour --
TEST(Variants, DpOriginalAlphaIsStrictlyMorePessimistic) {
  DpOptions original;
  original.alpha = DpOptions::Alpha::kOriginalReal;
  // Table 1 is accepted with the integer-area correction but sits exactly on
  // the boundary; the original bound (A_bnd smaller by 1) must reject it.
  EXPECT_FALSE(
      dp_test(paper_table1(), paper_device_small(), original).accepted());
  EXPECT_TRUE(dp_test(paper_table1(), paper_device_small()).accepted());
}

TEST(Variants, Gn1BclWindowNormalizationChangesTable1Verdict) {
  // With β_i normalized by the window D_k (the BCL-faithful reading),
  // Table 1 is accepted — evidence the paper computed with /D_i as printed.
  Gn1Options bcl;
  bcl.normalization = Gn1Options::Normalization::kBclWindowDk;
  EXPECT_TRUE(gn1_test(paper_table1(), paper_device_small(), bcl).accepted());
  EXPECT_FALSE(gn1_test(paper_table1(), paper_device_small()).accepted());
}

TEST(Variants, Gn1TheoremLiteralRhsIsMorePessimistic) {
  Gn1Options literal;
  literal.rhs = Gn1Options::Rhs::kTheoremLiteral;
  // Table 2 stays accepted (wide margin)…
  EXPECT_TRUE(
      gn1_test(paper_table2(), paper_device_small(), literal).accepted());
  // …and any taskset accepted under the literal RHS is accepted under the
  // default (larger) RHS as well, checked here on the three fixtures.
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    if (gn1_test(ts, paper_device_small(), literal).accepted()) {
      EXPECT_TRUE(gn1_test(ts, paper_device_small()).accepted());
    }
  }
}

// ------------------------------------------------------------ edge cases --
TEST(EdgeCases, EmptyTaskSetIsSchedulable) {
  const TaskSet empty;
  EXPECT_TRUE(dp_test(empty, paper_device_small()).accepted());
  EXPECT_TRUE(gn1_test(empty, paper_device_small()).accepted());
  EXPECT_TRUE(gn2_test(empty, paper_device_small()).accepted());
}

TEST(EdgeCases, OversizedTaskRejectsEverywhere) {
  const TaskSet ts({make_task(1, 5, 5, 12)});
  EXPECT_FALSE(dp_test(ts, paper_device_small()).accepted());
  EXPECT_FALSE(gn1_test(ts, paper_device_small()).accepted());
  EXPECT_FALSE(gn2_test(ts, paper_device_small()).accepted());
  EXPECT_FALSE(dp_test(ts, paper_device_small()).note.empty());
}

TEST(EdgeCases, CExceedingDRejectsEverywhere) {
  const TaskSet ts({make_task(6, 5, 5, 2)});
  EXPECT_FALSE(dp_test(ts, paper_device_small()).accepted());
  EXPECT_FALSE(gn1_test(ts, paper_device_small()).accepted());
  EXPECT_FALSE(gn2_test(ts, paper_device_small()).accepted());
}

TEST(EdgeCases, SingleLightTaskAcceptedByAllTests) {
  const TaskSet ts({make_task(1, 10, 10, 3)});
  EXPECT_TRUE(dp_test(ts, paper_device_small()).accepted());
  EXPECT_TRUE(gn1_test(ts, paper_device_small()).accepted());
  EXPECT_TRUE(gn2_test(ts, paper_device_small()).accepted());
}

TEST(EdgeCases, DpRefusesConstrainedDeadlinesByDefault) {
  const TaskSet ts({make_task(1, 5, 10, 3)});
  const auto strict = dp_test(ts, paper_device_small());
  EXPECT_FALSE(strict.accepted());
  EXPECT_NE(strict.note.find("implicit"), std::string::npos);

  DpOptions relaxed;
  relaxed.require_implicit_deadlines = false;
  EXPECT_TRUE(dp_test(ts, paper_device_small(), relaxed).accepted());
}

TEST(EdgeCases, Gn1HandlesConstrainedDeadlines) {
  // D < T exercises the N_i clamp and the carry-in max(D_k - N_i T_i, 0).
  const TaskSet ts({make_task(1, 4, 10, 2), make_task(2, 9, 9, 3)});
  const auto r = gn1_test(ts, paper_device_small());
  EXPECT_TRUE(r.accepted());
}

TEST(Overhead, InflationMatchesModel) {
  const TaskSet ts = paper_table1();
  OverheadModel model;
  model.cost.per_column = 2;  // 0.02 units per column
  const TaskSet inflated = inflate_for_overhead(ts, model);
  EXPECT_EQ(inflated[0].wcet, 126 + 2 * 9);
  EXPECT_EQ(inflated[1].wcet, 95 + 2 * 6);
}

TEST(Overhead, InflationOnlyReducesAcceptance) {
  OverheadModel model;
  model.cost.per_column = 5;
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    const TaskSet inflated = inflate_for_overhead(ts, model);
    // If the inflated set passes a test, the original must too (monotonicity
    // of all three bounds in C).
    if (dp_test(inflated, paper_device_small()).accepted()) {
      EXPECT_TRUE(dp_test(ts, paper_device_small()).accepted());
    }
    if (gn1_test(inflated, paper_device_small()).accepted()) {
      EXPECT_TRUE(gn1_test(ts, paper_device_small()).accepted());
    }
    if (gn2_test(inflated, paper_device_small()).accepted()) {
      EXPECT_TRUE(gn2_test(ts, paper_device_small()).accepted());
    }
  }
}

}  // namespace
}  // namespace reconf::analysis
