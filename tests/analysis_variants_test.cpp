// Directed coverage of the option matrix of the three tests: every variant
// flag documented in DESIGN.md §2 is exercised against hand-computed
// expectations, plus composite-option toggles and diagnostic contracts.

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "analysis/dp.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "task/fixtures.hpp"

namespace reconf::analysis {
namespace {

using fixtures::paper_device_small;
using fixtures::paper_table1;
using fixtures::paper_table2;
using fixtures::paper_table3;

// --------------------------------------------------------------- DP opts --
TEST(DpVariants, IntegerAlphaBoundIsExactlyOneColumnLarger) {
  // A(H)=10, A_max=9: A_bnd is 2 (integer) vs 1 (original). The per-task
  // RHS differs by exactly (1 − U_T(τ_k)).
  const TaskSet ts = paper_table1();
  const auto integer = dp_test(ts, paper_device_small());
  DpOptions opt;
  opt.alpha = DpOptions::Alpha::kOriginalReal;
  const auto original = dp_test(ts, paper_device_small(), opt);
  ASSERT_EQ(integer.per_task.size(), original.per_task.size());
  for (std::size_t k = 0; k < integer.per_task.size(); ++k) {
    const double ut_k = ts[k].time_utilization();
    EXPECT_NEAR(integer.per_task[k].rhs - original.per_task[k].rhs,
                1.0 - ut_k, 1e-9);
  }
}

TEST(DpVariants, TestNameDistinguishesVariants) {
  DpOptions opt;
  opt.alpha = DpOptions::Alpha::kOriginalReal;
  EXPECT_EQ(dp_test(paper_table1(), paper_device_small(), opt).test_name,
            "DP-original-alpha");
  EXPECT_EQ(dp_test(paper_table1(), paper_device_small()).test_name, "DP");
}

TEST(DpVariants, ImplicitDeadlineGateIsPerOption) {
  const TaskSet constrained({make_task(1, 4, 8, 3)});
  DpOptions relaxed;
  relaxed.require_implicit_deadlines = false;
  EXPECT_FALSE(dp_test(constrained, paper_device_small()).accepted());
  EXPECT_TRUE(
      dp_test(constrained, paper_device_small(), relaxed).accepted());
}

// -------------------------------------------------------------- GN1 opts --
TEST(Gn1Variants, AllFourCombinationsEvaluate) {
  for (const auto norm : {Gn1Options::Normalization::kPublishedDi,
                          Gn1Options::Normalization::kBclWindowDk}) {
    for (const auto rhs :
         {Gn1Options::Rhs::kLemma3PlusOne, Gn1Options::Rhs::kTheoremLiteral}) {
      Gn1Options opt;
      opt.normalization = norm;
      opt.rhs = rhs;
      const auto r = gn1_test(paper_table2(), paper_device_small(), opt);
      EXPECT_EQ(r.per_task.size(), 2u);
      // Table 2 has generous margins: every combination accepts it.
      EXPECT_TRUE(r.accepted());
    }
  }
}

TEST(Gn1Variants, TheoremLiteralRhsIsNeverMoreAccepting) {
  // (A(H)−A_k) ≤ (A(H)−A_k+1): the literal RHS can only lose tasksets.
  Gn1Options literal;
  literal.rhs = Gn1Options::Rhs::kTheoremLiteral;
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    const bool with_plus_one =
        gn1_test(ts, paper_device_small()).accepted();
    const bool without =
        gn1_test(ts, paper_device_small(), literal).accepted();
    EXPECT_LE(without, with_plus_one);
  }
}

TEST(Gn1Variants, WholeDeviceTaskMakesRhsCollapse) {
  // A_k = A(H): literal RHS factor is 0 → strict inequality unsatisfiable
  // whenever any interference exists.
  const TaskSet ts({make_task(1, 10, 10, 10), make_task(1, 9, 9, 1)});
  Gn1Options literal;
  literal.rhs = Gn1Options::Rhs::kTheoremLiteral;
  EXPECT_FALSE(gn1_test(ts, paper_device_small(), literal).accepted());
  // The Lemma 3 (+1) form keeps one column of slack and accepts the pair.
  EXPECT_TRUE(gn1_test(ts, paper_device_small()).accepted());
}

// -------------------------------------------------------------- GN2 opts --
TEST(Gn2Variants, MiddleBranchOptionOnlyMattersForPostPeriodDeadlines) {
  // D ≤ T keeps the middle branch dormant: verdicts identical.
  Gn2Options bak2;
  bak2.bak2_middle_branch = true;
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    EXPECT_EQ(gn2_test(ts, paper_device_small()).accepted(),
              gn2_test(ts, paper_device_small(), bak2).accepted());
  }
}

TEST(Gn2Variants, MiddleBranchDiffersOnPostPeriodDeadlines) {
  // D_i > T_i activates the branch (u_i > λ ∧ λ ≥ C_i/D_i). The published
  // value C_k/T_k is at most λ, so the published test is never *less*
  // accepting than Baker's on these sets; verify both run and the published
  // one dominates on a directed example.
  const TaskSet ts({
      make_task(6, 14, 8, 4),   // u = 0.75, C/D ≈ 0.43: post-period deadline
      make_task(2, 10, 10, 5),  // u = 0.2
  });
  Gn2Options bak2;
  bak2.bak2_middle_branch = true;
  const bool published = gn2_test(ts, paper_device_small()).accepted();
  const bool baker = gn2_test(ts, paper_device_small(), bak2).accepted();
  EXPECT_GE(published, baker);
}

TEST(Gn2Variants, NonStrictOptionOnlyAddsAcceptance) {
  Gn2Options printed;
  printed.non_strict_condition2 = true;
  for (const TaskSet& ts : {paper_table1(), paper_table2(), paper_table3()}) {
    const bool strict = gn2_test_exact(ts, paper_device_small()).accepted();
    const bool loose =
        gn2_test_exact(ts, paper_device_small(), printed).accepted();
    EXPECT_GE(loose, strict);
  }
}

TEST(Gn2Variants, SingleTaskAcceptsViaOwnLambda) {
  // One task, λ = C/T is the only candidate; condition 2 reduces to
  // A·min(β,1) < A_bnd·(1−λ)+A_min with A_bnd = A(H)−A+1.
  const TaskSet ts({make_task(4, 10, 10, 5)});
  const auto r = gn2_test(ts, paper_device_small());
  EXPECT_TRUE(r.accepted());
  EXPECT_NEAR(r.per_task[0].lambda, 0.4, 1e-9);
}

TEST(Gn2Variants, SaturatedLambdaCandidatesAreSkipped) {
  // A task with u = 1 contributes λ = 1, for which λ_k ≥ 1 — degenerate
  // and skipped; the other candidates must still be tried.
  const TaskSet ts({make_task(10, 10, 10, 2), make_task(1, 10, 10, 2)});
  const auto r = gn2_test(ts, paper_device_small());
  // k=1 (u=1) has no candidate with λ_k < 1 → inconclusive, never crashes.
  EXPECT_FALSE(r.accepted());
  ASSERT_TRUE(r.first_failing_task.has_value());
  EXPECT_EQ(*r.first_failing_task, 0u);
}

// --------------------------------------------------------- composite opts --
TEST(CompositeVariants, DisabledMembersAreSkipped) {
  CompositeOptions only_gn2;
  only_gn2.use_dp = false;
  only_gn2.use_gn1 = false;
  const auto r =
      composite_test(paper_table1(), paper_device_small(), only_gn2);
  EXPECT_EQ(r.sub_reports.size(), 1u);
  EXPECT_EQ(r.sub_reports[0].test_name, "GN2");
  EXPECT_FALSE(r.accepted());  // Table 1 is only DP-accepted
}

TEST(CompositeVariants, MemberOptionsPropagate) {
  CompositeOptions printed;
  printed.gn2.non_strict_condition2 = true;
  printed.use_dp = false;
  printed.use_gn1 = false;
  // With the printed '≤' GN2 accepts Table 1 in exact arithmetic; in the
  // double path the tolerance-guarded strict comparison stays rejecting,
  // so toggle through the option to confirm it reaches the evaluator.
  CompositeOptions gn2_only;
  gn2_only.use_dp = false;
  gn2_only.use_gn1 = false;
  const auto strict =
      composite_test(paper_table1(), paper_device_small(), gn2_only);
  EXPECT_FALSE(strict.accepted());
  // (Exact-path behaviour of the printed inequality is covered in
  // analysis_tables_test.)
}

TEST(CompositeVariants, EmptyLineupIsInconclusive) {
  CompositeOptions none;
  none.use_dp = none.use_gn1 = none.use_gn2 = false;
  const auto r = composite_test(paper_table3(), paper_device_small(), none);
  EXPECT_FALSE(r.accepted());
  EXPECT_TRUE(r.sub_reports.empty());
  EXPECT_TRUE(r.accepted_by().empty());
}

}  // namespace
}  // namespace reconf::analysis
