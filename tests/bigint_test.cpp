#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "math/bigint.hpp"
#include "math/bigrational.hpp"

namespace reconf::math {
namespace {

TEST(BigInt, ConstructsFromInt64Extremes) {
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(-1).to_string(), "-1");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::max()).to_string(),
            "9223372036854775807");
  EXPECT_EQ(BigInt(std::numeric_limits<std::int64_t>::min()).to_string(),
            "-9223372036854775808");
}

TEST(BigInt, Int64RoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
        std::int64_t{123456789012345}, std::int64_t{-987654321},
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    const BigInt b(v);
    ASSERT_TRUE(b.fits_int64()) << v;
    EXPECT_EQ(b.to_int64(), v);
  }
}

TEST(BigInt, FitsInt64Boundary) {
  BigInt max64(std::numeric_limits<std::int64_t>::max());
  BigInt beyond = max64 + BigInt(1);
  EXPECT_FALSE(beyond.fits_int64());
  BigInt min64(std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(min64.fits_int64());
  EXPECT_FALSE((min64 - BigInt(1)).fits_int64());
}

TEST(BigInt, FromStringParsesAndAgreesWithToString) {
  const std::string s = "123456789012345678901234567890";
  const BigInt b = BigInt::from_string(s);
  EXPECT_EQ(b.to_string(), s);
  EXPECT_EQ(BigInt::from_string("-42").to_string(), "-42");
  EXPECT_EQ(BigInt::from_string("+0").to_string(), "0");
  EXPECT_EQ(BigInt::from_string("-0").to_string(), "0");
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt big = BigInt::from_string("18446744073709551615");  // 2^64-1
  EXPECT_EQ((big + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SignedAdditionSubtraction) {
  const BigInt a(100);
  const BigInt b(-250);
  EXPECT_EQ((a + b).to_int64(), -150);
  EXPECT_EQ((b + a).to_int64(), -150);
  EXPECT_EQ((a - b).to_int64(), 350);
  EXPECT_EQ((b - a).to_int64(), -350);
  EXPECT_EQ((a - a).to_string(), "0");
}

TEST(BigInt, MultiplicationMatchesKnownProduct) {
  const BigInt a = BigInt::from_string("123456789123456789");
  const BigInt b = BigInt::from_string("987654321987654321");
  EXPECT_EQ((a * b).to_string(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).to_string(), "0");
  EXPECT_EQ((a * BigInt(-1)).to_string(), "-123456789123456789");
}

TEST(BigInt, ShiftsAreInverse) {
  BigInt x = BigInt::from_string("123456789012345678901234567890");
  BigInt y = x;
  y <<= 67;
  y >>= 67;
  EXPECT_EQ(x, y);
  BigInt one(1);
  one <<= 100;
  EXPECT_EQ(one.to_string(), "1267650600228229401496703205376");
  EXPECT_EQ(one.bit_length(), 101u);
}

TEST(BigInt, ShiftRightDropsLowBits) {
  BigInt x(0b1101);
  x >>= 2;
  EXPECT_EQ(x.to_int64(), 0b11);
  BigInt y(7);
  y >>= 10;
  EXPECT_TRUE(y.is_zero());
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::from_string("100000000000000000000"), BigInt(1));
  EXPECT_LT(BigInt::from_string("-100000000000000000000"), BigInt(-1));
}

TEST(BigInt, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_int64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(7)).to_int64(), 7);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_int64(), 6);
  const BigInt a = BigInt::from_string("123456789123456789") * BigInt(1000);
  const BigInt b = BigInt::from_string("123456789123456789") * BigInt(64);
  EXPECT_EQ(BigInt::gcd(a, b),
            BigInt::from_string("123456789123456789") * BigInt(8));
}

TEST(BigInt, GcdRandomAgainstInt64) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::int64_t>(rng() % 1'000'000'000);
    const auto b = static_cast<std::int64_t>(rng() % 1'000'000'000);
    const std::int64_t expect = std::gcd(a, b);
    EXPECT_EQ(BigInt::gcd(BigInt(a), BigInt(b)).to_int64(),
              expect == 0 ? std::max(a, b) : expect);
  }
}

TEST(BigInt, DivideExactUndoesMultiply) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<std::int64_t>(rng() % 1'000'000'000) + 1;
    const auto b = static_cast<std::int64_t>(rng() % 1'000'000'000) + 1;
    const BigInt product = BigInt(a) * BigInt(b);
    EXPECT_EQ(BigInt::divide_exact(product, BigInt(a)).to_int64(), b);
    EXPECT_EQ(BigInt::divide_exact(product.negated(), BigInt(a)).to_int64(),
              -b);
  }
}

TEST(BigInt, ToDoubleApproximatesLargeValues) {
  const BigInt x = BigInt::from_string("1000000000000000000000");  // 1e21
  EXPECT_NEAR(x.to_double(), 1e21, 1e6);
  EXPECT_NEAR(x.negated().to_double(), -1e21, 1e6);
}

TEST(BigRational, NormalizesAndCompares) {
  const BigRational a(6, 8);
  EXPECT_EQ(a, BigRational(3, 4));
  EXPECT_LT(BigRational(1, 3), BigRational(1, 2));
  EXPECT_EQ(BigRational(0, 5), BigRational(0));
  EXPECT_LT(BigRational(-1, 2), BigRational(1, 3));
}

TEST(BigRational, ExactArithmetic) {
  const BigRational a(1, 3);
  const BigRational b(1, 6);
  EXPECT_EQ(a + b, BigRational(1, 2));
  EXPECT_EQ(a - b, BigRational(1, 6));
  EXPECT_EQ(a * b, BigRational(1, 18));
  EXPECT_EQ(a / b, BigRational(2));
}

TEST(BigRational, Table1KnifeEdgeEqualityIsExact) {
  // Paper Table 1, DP at k=2: U_S = 2.76 and RHS = 2.76 exactly.
  // 9*(126/700) + 6*(95/500) == 2*(1 - 95/500) + 6*(95/500)
  const BigRational u1(126, 700);
  const BigRational u2(95, 500);
  const BigRational us = BigRational(9) * u1 + BigRational(6) * u2;
  const BigRational rhs =
      BigRational(2) * (BigRational(1) - u2) + BigRational(6) * u2;
  EXPECT_EQ(us, rhs);  // double arithmetic cannot certify this equality
  EXPECT_EQ(us, BigRational(69, 25));
}

TEST(BigRational, LongSumStaysExact) {
  // Σ 1/k for k=1..30 has a huge denominator; compare against known value.
  BigRational sum(0);
  for (int k = 1; k <= 30; ++k) sum += BigRational(1, k);
  // H_30 = 9304682830147/2329089562800.
  EXPECT_EQ(sum, BigRational(BigInt::from_string("9304682830147"),
                             BigInt::from_string("2329089562800")));
  EXPECT_NEAR(sum.to_double(), 3.99498713, 1e-7);
}

TEST(BigRational, ToStringFormats) {
  EXPECT_EQ(BigRational(3, 7).to_string(), "3/7");
  EXPECT_EQ(BigRational(5).to_string(), "5");
  EXPECT_EQ(BigRational(-3, 9).to_string(), "-1/3");
}

TEST(BigRational, FromRationalPreservesValue) {
  const Rational r(95, 500);
  EXPECT_EQ(BigRational(r), BigRational(19, 100));
}

TEST(BigRational, UnaryMinus) {
  EXPECT_EQ(-BigRational(3, 4), BigRational(-3, 4));
  EXPECT_EQ(-BigRational(0), BigRational(0));
}

}  // namespace
}  // namespace reconf::math
