#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "gen/rng.hpp"

namespace reconf::gen {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DerivedSeedsDiffer) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(derive_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256ss rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsCentered) {
  Xoshiro256ss rng(2);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Xoshiro256ss rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Generator, ProducesRequestedShape) {
  GenRequest req;
  req.profile = GenProfile::unconstrained(10);
  req.seed = 99;
  const auto ts = generate(req);
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->size(), 10u);
  for (const Task& t : *ts) {
    EXPECT_GE(t.area, 1);
    EXPECT_LE(t.area, 100);
    EXPECT_GT(t.period, 500);   // > 5 units
    EXPECT_LT(t.period, 2000);  // < 20 units
    EXPECT_EQ(t.deadline, t.period);
    EXPECT_GE(t.wcet, 1);
    EXPECT_LE(t.wcet, t.period);
  }
}

TEST(Generator, IsDeterministicPerSeed) {
  GenRequest req;
  req.profile = GenProfile::unconstrained(8);
  req.seed = 1234;
  const auto a = generate(req);
  const auto b = generate(req);
  ASSERT_TRUE(a && b);
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].wcet, (*b)[i].wcet);
    EXPECT_EQ((*a)[i].period, (*b)[i].period);
    EXPECT_EQ((*a)[i].area, (*b)[i].area);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GenRequest a;
  a.profile = GenProfile::unconstrained(8);
  a.seed = 1;
  GenRequest b = a;
  b.seed = 2;
  const auto ta = generate(a);
  const auto tb = generate(b);
  ASSERT_TRUE(ta && tb);
  bool any_diff = false;
  for (std::size_t i = 0; i < ta->size(); ++i) {
    any_diff = any_diff || (*ta)[i].period != (*tb)[i].period ||
               (*ta)[i].area != (*tb)[i].area;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, HitsSystemUtilizationTarget) {
  for (const double target : {10.0, 25.0, 50.0, 80.0}) {
    GenRequest req;
    req.profile = GenProfile::unconstrained(10);
    req.target_system_util = target;
    req.seed = 777;
    const auto ts = generate_with_retries(req);
    ASSERT_TRUE(ts.has_value()) << "target " << target;
    EXPECT_NEAR(ts->system_utilization(), target, req.target_tolerance)
        << "target " << target;
  }
}

TEST(Generator, TargetRespectsPerTaskCaps) {
  GenRequest req;
  req.profile = GenProfile::unconstrained(6);
  req.target_system_util = 60.0;
  req.seed = 4242;
  const auto ts = generate_with_retries(req);
  ASSERT_TRUE(ts.has_value());
  for (const Task& t : *ts) {
    EXPECT_LE(t.wcet, t.period);
    EXPECT_GE(t.wcet, 1);
  }
}

TEST(Generator, UnreachableTargetFails) {
  // 2 tasks with area <= 2: U_S can never reach 50.
  GenProfile p = GenProfile::unconstrained(2);
  p.area_max = 2;
  GenRequest req;
  req.profile = p;
  req.target_system_util = 50.0;
  req.seed = 5;
  EXPECT_FALSE(generate_with_retries(req, 8).has_value());
}

TEST(Generator, SpatiallyHeavyProfileBounds) {
  GenRequest req;
  req.profile = GenProfile::spatially_heavy_time_light(10);
  req.seed = 31;
  const auto ts = generate(req);
  ASSERT_TRUE(ts.has_value());
  for (const Task& t : *ts) {
    EXPECT_GE(t.area, 50);
    EXPECT_LE(t.area, 100);
    EXPECT_LE(t.time_utilization(), 0.31);  // light in time
  }
}

TEST(Generator, SpatiallyLightTimeHeavyProfileBounds) {
  GenRequest req;
  req.profile = GenProfile::spatially_light_time_heavy(10);
  req.seed = 32;
  const auto ts = generate(req);
  ASSERT_TRUE(ts.has_value());
  for (const Task& t : *ts) {
    EXPECT_LE(t.area, 30);
    EXPECT_GE(t.time_utilization(), 0.45);  // heavy in time (rounding slack)
  }
}

TEST(Generator, ConstrainedDeadlineProfile) {
  GenProfile p = GenProfile::unconstrained(5);
  p.deadline_ratio_min = 0.5;
  p.deadline_ratio_max = 0.8;
  GenRequest req;
  req.profile = p;
  req.seed = 64;
  const auto ts = generate(req);
  ASSERT_TRUE(ts.has_value());
  for (const Task& t : *ts) {
    EXPECT_LT(t.deadline, t.period);
    EXPECT_LE(t.wcet, t.deadline);
  }
}

TEST(Generator, RetriesRecoverFromHardSeeds) {
  // With retries the generator should succeed for a reachable target even
  // if some seeds draw a bad hand. (For this profile U_S must lie within
  // [0.5·ΣA, ΣA]; 90 sits inside the typical area-sum range.)
  GenRequest req;
  req.profile = GenProfile::spatially_light_time_heavy(10);
  req.target_system_util = 90.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    req.seed = seed;
    EXPECT_TRUE(generate_with_retries(req).has_value()) << "seed " << seed;
  }
}

TEST(Generator, RetargetingPreservesProfileUtilizationRange) {
  // The class semantics must survive U_S targeting: a temporally-heavy
  // profile keeps every u within [0.5, 1] (one-tick rounding slack), and
  // unreachable targets fail rather than silently leaving the class.
  GenRequest req;
  req.profile = GenProfile::spatially_light_time_heavy(10);
  req.target_system_util = 90.0;
  req.seed = 9090;
  const auto ts = generate_with_retries(req);
  ASSERT_TRUE(ts.has_value());
  EXPECT_NEAR(ts->system_utilization(), 90.0, req.target_tolerance);
  for (const Task& t : *ts) {
    EXPECT_GE(t.time_utilization(), 0.5 - 2e-3);
    EXPECT_LE(t.time_utilization(), 1.0);
  }
}

TEST(Generator, TargetOutsideProfileRangeFails) {
  // Temporally-heavy tasks cannot produce U_S far below 0.5·ΣA; a target of
  // 8 with 10 tasks of area >= 10... is unreachable within the class.
  GenProfile p = GenProfile::spatially_light_time_heavy(10);
  p.area_min = 10;  // force ΣA >= 100, so min U_S ≈ 50
  GenRequest req;
  req.profile = p;
  req.target_system_util = 8.0;
  req.seed = 3;
  EXPECT_FALSE(generate_with_retries(req, 8).has_value());
}

}  // namespace
}  // namespace reconf::gen
