// Tests for the admission-control service subsystem: canonical hashing,
// the sharded LRU verdict cache, the incremental AdmissionSession, and the
// batch pipeline's determinism contract.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "analysis/hash.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "gen/generator.hpp"
#include "svc/batch.hpp"
#include "svc/session.hpp"
#include "svc/verdict_cache.hpp"
#include "task/task.hpp"

namespace reconf {
namespace {

TaskSet table3_taskset() {
  return TaskSet({make_task(2.10, 5, 5, 7, "t1"), make_task(2.00, 7, 7, 7, "t2"),
                  make_task(3.00, 10, 10, 6, "t3")});
}

// ------------------------------------------------------------ hashing ----

TEST(CanonicalHash, StableAcrossTaskReordering) {
  const Device dev{10};
  const std::vector<Task> tasks = {make_task(2.10, 5, 5, 7),
                                   make_task(2.00, 7, 7, 7),
                                   make_task(3.00, 10, 10, 6)};
  std::vector<Task> perm = tasks;
  std::sort(perm.begin(), perm.end(),
            [](const Task& a, const Task& b) { return a.wcet < b.wcet; });
  std::reverse(perm.begin(), perm.end());

  const auto h1 = analysis::canonical_hash(TaskSet(tasks), dev);
  const auto h2 = analysis::canonical_hash(TaskSet(perm), dev);
  EXPECT_EQ(h1, h2);
}

TEST(CanonicalHash, IgnoresTaskNames) {
  const Device dev{10};
  const TaskSet named({make_task(2.10, 5, 5, 7, "alpha")});
  const TaskSet anon({make_task(2.10, 5, 5, 7)});
  EXPECT_EQ(analysis::canonical_hash(named, dev),
            analysis::canonical_hash(anon, dev));
}

TEST(CanonicalHash, SensitiveToEveryParameterAndDevice) {
  const Device dev{10};
  const TaskSet base({make_task(2.10, 5, 5, 7)});
  const auto h = analysis::canonical_hash(base, dev);

  EXPECT_NE(h, analysis::canonical_hash(TaskSet({make_task(2.11, 5, 5, 7)}),
                                        dev));
  EXPECT_NE(h, analysis::canonical_hash(TaskSet({make_task(2.10, 4, 5, 7)}),
                                        dev));
  EXPECT_NE(h, analysis::canonical_hash(TaskSet({make_task(2.10, 5, 6, 7)}),
                                        dev));
  EXPECT_NE(h, analysis::canonical_hash(TaskSet({make_task(2.10, 5, 5, 8)}),
                                        dev));
  EXPECT_NE(h, analysis::canonical_hash(base, Device{11}));
}

TEST(CanonicalHash, FieldSwapBetweenTasksChangesHash) {
  // A single commutative accumulator over raw fields would collide these:
  // the per-task SplitMix64 chaining must not.
  const Device dev{10};
  const TaskSet a(
      {make_task(2.00, 5, 5, 7), make_task(3.00, 7, 7, 6)});
  const TaskSet b(
      {make_task(3.00, 5, 5, 7), make_task(2.00, 7, 7, 6)});
  EXPECT_NE(analysis::canonical_hash(a, dev), analysis::canonical_hash(b, dev));
}

TEST(CanonicalHash, DistinguishesDuplicateCounts) {
  // xor alone would cancel a repeated task; the sum channel must not.
  const Device dev{10};
  const Task t = make_task(1.00, 9, 9, 2);
  const TaskSet two({t, t});
  const TaskSet four({t, t, t, t});
  EXPECT_NE(analysis::canonical_hash(two, dev),
            analysis::canonical_hash(four, dev));
}

// -------------------------------------------------------------- cache ----

TEST(VerdictCache, MissThenHit) {
  svc::VerdictCache cache(8, 1);
  EXPECT_FALSE(cache.lookup(42).has_value());
  cache.insert(42, {true, "DP"});
  const auto hit = cache.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->accepted);
  EXPECT_EQ(hit->accepted_by, "DP");

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(VerdictCache, EvictsLeastRecentlyUsed) {
  svc::VerdictCache cache(2, 1);  // one shard => exact LRU
  cache.insert(1, {true, "DP"});
  cache.insert(2, {false, ""});
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 is now most recent
  cache.insert(3, {true, "GN2"});            // evicts 2

  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(VerdictCache, ReinsertRefreshesInsteadOfDuplicating) {
  svc::VerdictCache cache(2, 1);
  cache.insert(1, {false, ""});
  cache.insert(1, {true, "GN1"});
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->accepted);
  EXPECT_EQ(hit->accepted_by, "GN1");
}

TEST(VerdictCache, ZeroCapacityDisablesCaching) {
  svc::VerdictCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(7, {true, "DP"});
  EXPECT_FALSE(cache.lookup(7).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCache, ShardCountNeverExceedsCapacity) {
  svc::VerdictCache tiny(3, 16);
  EXPECT_LE(tiny.shard_count(), 2u);
  svc::VerdictCache wide(1024, 16);
  EXPECT_EQ(wide.shard_count(), 16u);
  svc::VerdictCache rounded(1024, 5);
  EXPECT_EQ(rounded.shard_count(), 8u);
}

TEST(VerdictCache, ClearDropsEntriesKeepsStats) {
  svc::VerdictCache cache(8);
  cache.insert(1, {true, "DP"});
  ASSERT_TRUE(cache.lookup(1).has_value());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(VerdictCache, ConcurrentMixedLoadStaysConsistent) {
  svc::VerdictCache cache(128, 8);
  parallel_for(
      4096,
      [&](std::size_t i) {
        const auto key = derive_seed(99, i % 200);
        if (auto hit = cache.lookup(key)) {
          // Value must always be the one every writer stores for this key.
          EXPECT_EQ(hit->accepted, key % 2 == 0);
        } else {
          cache.insert(key, {key % 2 == 0, key % 2 == 0 ? "DP" : ""});
        }
      },
      8);
  EXPECT_LE(cache.size(), 128u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4096u);
}

// ------------------------------------------------------------ session ----

TEST(AdmissionSession, MatchesDirectCompositeTest) {
  const Device dev{10};
  svc::AdmissionSession session(dev);
  const auto ts = table3_taskset();

  std::vector<Task> admitted_so_far;
  for (const Task& t : ts) {
    std::vector<Task> trial = admitted_so_far;
    trial.push_back(t);
    const bool expect =
        analysis::composite_test(TaskSet(trial), dev).accepted();
    const auto decision = session.try_admit(t);
    EXPECT_EQ(decision.admitted, expect);
    EXPECT_FALSE(decision.cache_hit);
    ASSERT_TRUE(decision.report.has_value());
    if (decision.admitted) admitted_so_far.push_back(t);
  }
  EXPECT_EQ(session.admitted().size(), admitted_so_far.size());
}

TEST(AdmissionSession, RejectionLeavesAdmittedSetUntouched) {
  const Device dev{5};
  svc::AdmissionSession session(dev);
  ASSERT_TRUE(session.try_admit(make_task(1.00, 5, 5, 3)).admitted);
  // Area 6 exceeds the device: infeasible, every test rejects.
  const auto decision = session.try_admit(make_task(1.00, 5, 5, 6));
  EXPECT_FALSE(decision.admitted);
  EXPECT_TRUE(decision.accepted_by.empty());
  EXPECT_EQ(session.admitted().size(), 1u);
  EXPECT_EQ(session.stats().rejected, 1u);
}

TEST(AdmissionSession, RemoveThenReadmitHitsCache) {
  const Device dev{10};
  svc::VerdictCache cache(64);
  svc::AdmissionSession session(dev, &cache);

  const Task t1 = make_task(2.10, 5, 5, 7, "t1");
  const Task t2 = make_task(2.00, 7, 7, 7, "t2");
  ASSERT_TRUE(session.try_admit(t1).admitted);
  ASSERT_TRUE(session.try_admit(t2).admitted);

  ASSERT_TRUE(session.remove(t2));
  EXPECT_EQ(session.admitted().size(), 1u);

  // Same configuration as the first t2 admission => cache hit, same verdict.
  const auto again = session.try_admit(t2);
  EXPECT_TRUE(again.admitted);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_FALSE(again.report.has_value());
  EXPECT_EQ(session.stats().cache_hits, 1u);
}

TEST(AdmissionSession, RemoveMatchesFullIdentity) {
  const Device dev{10};
  svc::AdmissionSession session(dev);
  const Task named = make_task(1.00, 9, 9, 2, "mine");
  ASSERT_TRUE(session.try_admit(named).admitted);

  Task other = named;
  other.name = "theirs";
  EXPECT_FALSE(session.remove(other));
  EXPECT_TRUE(session.remove(named));
  EXPECT_TRUE(session.admitted().empty());
  EXPECT_FALSE(session.remove_at(0));
}

TEST(AdmissionSession, SharedCacheIsolatesTestConfigurations) {
  // A cached EDF-NF acceptance (GN1 is in the lineup) must never be served
  // to a for_fkf session — GN1 is unsound for EDF-FkF. The cache key mixes
  // in the configuration fingerprint, so the for_fkf session re-analyzes.
  const Device dev{20};
  svc::VerdictCache cache(64);
  svc::AdmissionSession nf(dev, &cache);
  svc::AdmissionSession fkf(dev, &cache, {}, /*for_fkf=*/true);

  const auto ts = table3_taskset();
  for (const Task& t : ts) {
    const auto nf_decision = nf.try_admit(t);
    const auto fkf_decision = fkf.try_admit(t);
    EXPECT_FALSE(fkf_decision.cache_hit)
        << "for_fkf verdicts must not come from the EDF-NF cache lines";
    EXPECT_NE(nf_decision.hash, fkf_decision.hash);
    // The FkF-sound subset excludes GN1 entirely.
    if (fkf_decision.admitted) {
      EXPECT_NE(fkf_decision.accepted_by, "gn1");
    }
  }
  // The capability filter drops gn1 from the FkF session's lineup.
  EXPECT_EQ(fkf.engine().execution_order(),
            (std::vector<std::string>{"dp", "gn2"}));
}

TEST(BatchPipeline, CacheKeyCoversAnalysisOptions) {
  svc::BatchRequest request;
  request.id = "k";
  request.taskset = table3_taskset();
  request.device = Device{20};

  svc::VerdictCache cache(64);
  svc::BatchOptions nf;
  const auto first = svc::evaluate_request(request, &cache, nf);
  EXPECT_FALSE(first.cache_hit);

  svc::BatchOptions gn2_only;
  gn2_only.request.tests = {"gn2"};
  const auto other = svc::evaluate_request(request, &cache, gn2_only);
  EXPECT_FALSE(other.cache_hit) << "different analyzer set must miss";
  EXPECT_NE(other.hash, first.hash);

  svc::BatchOptions strict;
  strict.request.tests = {"gn2"};
  strict.request.config.gn2.non_strict_condition2 = true;
  const auto tweaked = svc::evaluate_request(request, &cache, strict);
  EXPECT_FALSE(tweaked.cache_hit) << "different per-test options must miss";
  EXPECT_NE(tweaked.hash, other.hash);

  const auto repeat = svc::evaluate_request(request, &cache, nf);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.accepted, first.accepted);
}

TEST(BatchPipeline, PerRequestTestsOverrideThePipelineDefault) {
  svc::BatchRequest full;
  full.id = "full";
  full.taskset = table3_taskset();
  full.device = Device{20};

  svc::BatchRequest dp_only = full;
  dp_only.id = "dp";
  dp_only.tests = {"dp"};

  svc::VerdictCache cache(64);
  svc::BatchOptions explain;
  explain.request = svc::BatchOptions::explain_request();
  const auto a = svc::evaluate_request(full, &cache, explain);
  const auto b = svc::evaluate_request(dp_only, &cache, explain);
  EXPECT_NE(a.hash, b.hash)
      << "a {dp}-only verdict must never share a cache line with the trio";
  EXPECT_FALSE(b.cache_hit);

  // The override reaches the engine: only dp appears in the sub-reports.
  ASSERT_EQ(b.sub.size(), 1u);
  EXPECT_EQ(b.sub[0].test, "dp");

  // Same override again: cache hit on the {dp} line.
  const auto c = svc::evaluate_request(dp_only, &cache, explain);
  EXPECT_TRUE(c.cache_hit);
  EXPECT_EQ(c.accepted, b.accepted);

  // The fast-path default shares those cache lines: identical verdicts, so
  // a diagnostics-mode entry answers a fast-mode request and vice versa.
  const auto d = svc::evaluate_request(dp_only, &cache, {});
  EXPECT_TRUE(d.cache_hit);
  EXPECT_EQ(d.hash, b.hash);
  EXPECT_EQ(d.accepted, b.accepted);
}

TEST(BatchPipeline, SelectionEmptiedByFilterYieldsErrorNotInconclusive) {
  // {"tests":["gn1"]} under an EDF-FkF pipeline: gn1 is filtered out as
  // unsound, leaving nothing to run — the caller gets an error, never a
  // silent kInconclusive that looks like "gn1 ran and failed".
  svc::BatchRequest request;
  request.id = "e";
  request.taskset = table3_taskset();
  request.device = Device{20};
  request.tests = {"gn1"};

  svc::BatchOptions fkf;
  fkf.request.scheduler = analysis::Scheduler::kEdfFkF;
  const auto verdict = svc::evaluate_request(request, nullptr, fkf);
  EXPECT_FALSE(verdict.error.empty());
  EXPECT_FALSE(verdict.accepted);

  // Same via the batch path.
  ThreadPool pool(2);
  const auto batch = svc::run_batch(std::span(&request, 1), nullptr, pool,
                                    fkf);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].error.empty());
}

TEST(BatchPipeline, ExplainModeCarriesSubReportsInExecutionOrder) {
  svc::BatchRequest request;
  request.id = "s";
  request.taskset = table3_taskset();
  request.device = Device{20};

  svc::BatchOptions explain;
  explain.request = svc::BatchOptions::explain_request();
  const auto verdict = svc::evaluate_request(request, nullptr, explain);
  ASSERT_EQ(verdict.sub.size(), 3u);
  EXPECT_EQ(verdict.sub[0].test, "dp");   // cheapest first
  EXPECT_EQ(verdict.sub[1].test, "gn1");
  EXPECT_EQ(verdict.sub[2].test, "gn2");
  if (verdict.accepted) {
    EXPECT_EQ(verdict.accepted_by, verdict.sub[0].accepted   ? "dp"
                                   : verdict.sub[1].accepted ? "gn1"
                                                             : "gn2");
  }
}

TEST(BatchPipeline, FastDefaultMatchesExplainVerdictsWithoutSubReports) {
  // The serving default decides through the SoA fast path: no sub array,
  // but verdict, accepted_by and cache key identical to diagnostics mode.
  svc::BatchRequest request;
  request.id = "f";
  request.taskset = table3_taskset();
  request.device = Device{20};

  const auto fast = svc::evaluate_request(request, nullptr, {});
  EXPECT_TRUE(fast.sub.empty());

  svc::BatchOptions explain;
  explain.request = svc::BatchOptions::explain_request();
  const auto full = svc::evaluate_request(request, nullptr, explain);
  EXPECT_EQ(fast.accepted, full.accepted);
  EXPECT_EQ(fast.accepted_by, full.accepted_by);
  EXPECT_EQ(fast.hash, full.hash)
      << "diagnostics must not change the cache key";
}

TEST(AdmissionSession, SharedCacheServesSecondSession) {
  const Device dev{10};
  svc::VerdictCache cache(64);
  svc::AdmissionSession first(dev, &cache);
  const auto ts = table3_taskset();
  for (const Task& t : ts) first.try_admit(t);

  svc::AdmissionSession second(dev, &cache);
  for (const Task& t : ts) {
    const auto decision = second.try_admit(t);
    EXPECT_TRUE(decision.cache_hit) << "replay should be served from cache";
  }
}

// ----------------------------------------------------- batch pipeline ----

TEST(BatchPipeline, IdenticalResultsForOneAndManyThreads) {
  std::vector<svc::BatchRequest> requests;
  requests.reserve(96);
  for (std::size_t i = 0; i < 96; ++i) {
    gen::GenRequest req;
    req.profile = gen::GenProfile::unconstrained(6);
    req.seed = derive_seed(7, i % 3 == 0 ? i / 3 : 1000 + i);
    auto ts = gen::generate(req);
    ASSERT_TRUE(ts.has_value());
    svc::BatchRequest r;
    r.id = std::to_string(i);
    r.taskset = std::move(*ts);
    r.device = Device{100};
    requests.push_back(std::move(r));
  }

  auto run_with_threads = [&](unsigned threads) {
    svc::VerdictCache cache(1024);
    ThreadPool pool(threads);
    return svc::run_batch(requests, &cache, pool, {});
  };

  const auto serial = run_with_threads(1);
  ASSERT_EQ(serial.size(), requests.size());
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = run_with_threads(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].id, serial[i].id);
      EXPECT_EQ(parallel[i].accepted, serial[i].accepted) << "request " << i;
      EXPECT_EQ(parallel[i].accepted_by, serial[i].accepted_by)
          << "request " << i;
      EXPECT_EQ(parallel[i].hash, serial[i].hash) << "request " << i;
    }
  }
}

TEST(BatchPipeline, CacheDoesNotChangeVerdicts) {
  std::vector<svc::BatchRequest> requests;
  for (std::size_t i = 0; i < 32; ++i) {
    gen::GenRequest req;
    req.profile = gen::GenProfile::unconstrained(5);
    req.seed = derive_seed(21, i / 2);  // every taskset appears twice
    auto ts = gen::generate(req);
    ASSERT_TRUE(ts.has_value());
    svc::BatchRequest r;
    r.id = std::to_string(i);
    r.taskset = std::move(*ts);
    r.device = Device{100};
    requests.push_back(std::move(r));
  }

  ThreadPool pool(4);
  svc::VerdictCache cache(64);
  const auto cached = svc::run_batch(requests, &cache, pool, {});
  const auto uncached = svc::run_batch(requests, nullptr, pool, {});
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].accepted, uncached[i].accepted);
    EXPECT_EQ(cached[i].accepted_by, uncached[i].accepted_by);
    EXPECT_EQ(cached[i].hash, uncached[i].hash);
  }
  // Duplicated tasksets must be visible as hits once warm.
  const auto warm = svc::run_batch(requests, &cache, pool, {});
  (void)warm;
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(BatchPipeline, ExpiredDeadlineShedsInsteadOfAnalyzing) {
  svc::BatchRequest request;
  request.id = "late";
  request.taskset = table3_taskset();
  request.device = Device{100};
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const svc::BatchVerdict verdict =
      svc::evaluate_request(request, nullptr, {});
  EXPECT_EQ(verdict.shed, "deadline");
  EXPECT_TRUE(verdict.error.empty());
  EXPECT_FALSE(verdict.accepted);

  // No deadline (the default) analyzes as before.
  request.deadline = {};
  EXPECT_TRUE(svc::evaluate_request(request, nullptr, {}).shed.empty());
}

// ----------------------------------------------------- cache snapshot ----

TEST(VerdictCacheSnapshot, SaveRestoreRequeryIsBitIdentical) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "reconf_cache_snap_test.v1")
          .string();
  svc::VerdictCache cache(64, 4);
  for (std::uint64_t k = 1; k <= 40; ++k) {
    cache.insert(k * 0x9E3779B97F4A7C15ull,
                 svc::CachedVerdict{k % 3 != 0, k % 2 == 0 ? "dp" : "gn2"});
  }
  std::string error;
  ASSERT_TRUE(cache.save_snapshot(path, &error)) << error;

  svc::VerdictCache restored(64, 4);
  std::size_t count = 0;
  ASSERT_TRUE(restored.load_snapshot(path, &count, &error)) << error;
  EXPECT_EQ(count, cache.size());
  for (std::uint64_t k = 1; k <= 40; ++k) {
    const auto a = cache.lookup(k * 0x9E3779B97F4A7C15ull);
    const auto b = restored.lookup(k * 0x9E3779B97F4A7C15ull);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value()) << "entry " << k << " lost in restore";
    EXPECT_EQ(a->accepted, b->accepted);
    EXPECT_EQ(a->accepted_by, b->accepted_by);
  }
  // Save the restored cache again: the snapshot is canonical, so the bytes
  // must match the first file exactly.
  const std::string path2 = path + ".again";
  ASSERT_TRUE(restored.save_snapshot(path2, &error)) << error;
  std::ifstream f1(path), f2(path2);
  std::stringstream s1, s2;
  s1 << f1.rdbuf();
  s2 << f2.rdbuf();
  EXPECT_EQ(s1.str(), s2.str());
  std::filesystem::remove(path);
  std::filesystem::remove(path2);
}

TEST(VerdictCacheSnapshot, RefusesTruncatedAndMalformedFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string good = (dir / "reconf_snap_good.v1").string();
  svc::VerdictCache cache(32, 2);
  cache.insert(0xABCDull, svc::CachedVerdict{true, "dp"});
  cache.insert(0x1234ull, svc::CachedVerdict{false, ""});
  ASSERT_TRUE(cache.save_snapshot(good));

  // Truncate: drop the last line so `count` no longer matches.
  std::ifstream in(good);
  std::stringstream all;
  all << in.rdbuf();
  std::string text = all.str();
  text.erase(text.rfind('\n', text.size() - 2) + 1);
  const std::string bad = (dir / "reconf_snap_bad.v1").string();
  std::ofstream(bad) << text;

  svc::VerdictCache victim(32, 2);
  std::string error;
  EXPECT_FALSE(victim.load_snapshot(bad, nullptr, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  std::ofstream(bad) << "not a snapshot\n";
  EXPECT_FALSE(victim.load_snapshot(bad, nullptr, &error));
  std::ofstream(bad) << "reconf-verdict-cache v1\ncount 1\nzzzz 5 dp\n";
  EXPECT_FALSE(victim.load_snapshot(bad, nullptr, &error));
  EXPECT_FALSE(victim.load_snapshot((dir / "reconf_absent.v1").string(),
                                    nullptr, &error));
  std::filesystem::remove(good);
  std::filesystem::remove(bad);
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPoolClass, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolClass, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolClass, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolClass, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolClass, ParallelForReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(100, [&](std::size_t) { sum.fetch_add(1); });
    ASSERT_EQ(sum.load(), 100);
  }
}

}  // namespace
}  // namespace reconf
