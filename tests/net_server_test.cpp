// Socket-level integration tests for the async serving tier (src/net/):
// pipelined and fragmented NDJSON over real TCP connections, byte-compared
// against a single-process replay through the same evaluate_with_engine
// funnel; oversized/malformed line recovery; concurrent connections;
// snapshot topology portability (save under one shard count, warm-restore
// under another); core pinning; graceful EOF flush; and the poll(2)
// fallback backend selected via RECONF_NET_POLL=1.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "common/thread_pool.hpp"
#include "net/poller.hpp"
#include "net/server.hpp"
#include "svc/batch.hpp"
#include "svc/codec.hpp"
#include "svc/verdict_cache.hpp"

namespace reconf {
namespace {

// ------------------------------------------------------------ helpers ----

/// A valid request line whose canonical hash is unique per `g` (same
/// mixed-radix scheme as tools/reconf_loadgen).
std::string request_line(std::uint64_t g, const std::string& id) {
  const unsigned c = static_cast<unsigned>(1 + g % 600);
  const unsigned a = static_cast<unsigned>(1 + (g / 600) % 60);
  std::string out = "{\"id\":\"" + id + "\",\"device\":100,\"tasks\":[{\"c\":";
  out += std::to_string(c);
  out += ",\"d\":700,\"t\":700,\"a\":";
  out += std::to_string(a);
  out += "},{\"c\":40,\"d\":500,\"t\":500,\"a\":7}]}";
  return out;
}

/// Blocking connect to a test server.
int must_connect(std::uint16_t port) {
  std::string error;
  const int fd = net::connect_tcp("127.0.0.1", port, &error);
  EXPECT_GE(fd, 0) << error;
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads until `count` newline-terminated lines have arrived (or EOF).
std::vector<std::string> read_lines(int fd, std::size_t count) {
  std::vector<std::string> lines;
  std::string pending;
  char buf[16 * 1024];
  while (lines.size() < count) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t at;
    while ((at = pending.find('\n')) != std::string::npos) {
      lines.push_back(pending.substr(0, at));
      pending.erase(0, at + 1);
    }
  }
  return lines;
}

/// Replaces every "micros":<number> with "micros":0 — analyzer wall times
/// are the one nondeterministic part of a verdict line.
std::string normalize_timing(std::string line) {
  static const std::string key = "\"micros\":";
  std::size_t at = 0;
  while ((at = line.find(key, at)) != std::string::npos) {
    std::size_t end = at + key.size();
    while (end < line.size() &&
           (std::isdigit(static_cast<unsigned char>(line[end])) != 0 ||
            line[end] == '.' || line[end] == '-' || line[end] == '+' ||
            line[end] == 'e')) {
      ++end;
    }
    line.replace(at, end - at, key + "0");
    at += key.size();
  }
  return line;
}

/// Single-process replay of one request line through the exact funnel the
/// shard workers use — default engine, or a custom one when the request
/// names its own analyzer lineup — the reference output for byte
/// comparison.
std::string replay_line(const std::string& line,
                        const svc::BatchOptions& options,
                        const analysis::AnalysisEngine& engine,
                        svc::VerdictStore* cache) {
  svc::BatchRequest request;
  try {
    request = svc::parse_request_line(line);
  } catch (const svc::CodecError& e) {
    return svc::format_error_line(e.id(), e.what());
  }
  svc::BatchVerdict v;
  if (request.tests.empty()) {
    v = svc::evaluate_with_engine(engine, request, cache);
  } else {
    analysis::AnalysisRequest custom = options.request;
    custom.tests = request.tests;
    v = svc::evaluate_with_engine(analysis::AnalysisEngine(custom), request,
                                  cache);
  }
  return svc::format_verdict_line(v, &request.taskset);
}

net::ServerConfig test_config(unsigned shards) {
  net::ServerConfig config;
  config.shards = shards;
  config.io_threads = 1;
  config.cache_capacity = 4096;
  return config;
}

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("reconf_net_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// ------------------------------------------- replay parity over TCP ----

/// Sends `lines` over one connection in deliberately awkward fragments
/// (split mid-line every `frag` bytes) and byte-compares the responses,
/// timing-normalized, against the single-process replay.
void run_parity(const net::ServerConfig& config,
                const std::vector<std::string>& lines, std::size_t frag) {
  net::AsyncServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::string wire;
  for (const std::string& line : lines) wire += line + "\n";

  const int fd = must_connect(server.port());
  std::thread writer([&] {
    for (std::size_t off = 0; off < wire.size(); off += frag) {
      send_all(fd, wire.substr(off, frag));
    }
    ::shutdown(fd, SHUT_WR);
  });
  const std::vector<std::string> got = read_lines(fd, lines.size());
  writer.join();
  ::close(fd);
  server.stop();

  // Reference: same lines through the same funnel against a fresh striped
  // cache. Duplicates of a key land on one shard worker in send order, so
  // the hit/miss pattern matches the sequential replay exactly — this is
  // the sharded-vs-striped cache parity check of the acceptance criteria.
  svc::VerdictCache reference(config.cache_capacity);
  const analysis::AnalysisEngine engine(config.options.request);
  ASSERT_EQ(got.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(normalize_timing(got[i]),
              normalize_timing(
                  replay_line(lines[i], config.options, engine, &reference)))
        << "line " << i;
  }
}

std::vector<std::string> parity_workload() {
  std::vector<std::string> lines;
  for (std::uint64_t g = 0; g < 40; ++g) {
    lines.push_back(request_line(g, "u" + std::to_string(g)));
  }
  // Duplicates — must come back "cache":"hit" from the owning shard,
  // bit-identical to the striped cache's answer.
  lines.push_back(request_line(3, "dup-a"));
  lines.push_back(request_line(17, "dup-b"));
  lines.push_back(request_line(3, "dup-c"));
  // Malformed: parse error with the id recovered from the broken line.
  lines.push_back("{\"id\":\"bad-1\",\"device\":100,\"tasks\":17}");
  lines.push_back("not json at all");
  // Custom analyzer lineup exercises the per-shard custom-engine map.
  lines.push_back(
      "{\"id\":\"lineup\",\"device\":100,\"tests\":[\"dp\"],"
      "\"tasks\":[{\"c\":10,\"d\":700,\"t\":700,\"a\":9}]}");
  lines.push_back(request_line(17, "dup-d"));
  return lines;
}

TEST(NetServer, PipelinedRepliesMatchSingleProcessReplay) {
  run_parity(test_config(3), parity_workload(), 64 * 1024);
}

TEST(NetServer, FragmentedWritesReassembleIdentically) {
  // 7-byte fragments tear every line across many reads.
  run_parity(test_config(2), parity_workload(), 7);
}

TEST(NetServer, PollFallbackBackendServesIdentically) {
  ::setenv("RECONF_NET_POLL", "1", 1);
  net::ServerConfig config = test_config(2);
  {
    net::AsyncServer probe(config);
    std::string error;
    ASSERT_TRUE(probe.start(&error)) << error;
    EXPECT_STREQ(probe.backend(), "poll");
    probe.stop();
  }
  run_parity(config, parity_workload(), 1024);
  ::unsetenv("RECONF_NET_POLL");
}

TEST(NetServer, OversizedLineAnswersErrorAndRecovers) {
  net::AsyncServer server(test_config(2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::string huge = "{\"id\":\"toobig\",\"device\":100,\"tasks\":[";
  huge.append(svc::kMaxRequestLine + 1024, ' ');
  huge += "]}";

  const int fd = must_connect(server.port());
  std::thread writer([&] {
    send_all(fd, huge + "\n" + request_line(1, "after") + "\n");
    ::shutdown(fd, SHUT_WR);
  });
  const std::vector<std::string> got = read_lines(fd, 2);
  writer.join();
  ::close(fd);
  server.stop();

  ASSERT_EQ(got.size(), 2u);
  // The oversized line is answered as a correlated error (the id is in the
  // retained prefix), and the connection keeps serving afterwards.
  EXPECT_NE(got[0].find("\"id\":\"toobig\""), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("\"error\":"), std::string::npos) << got[0];
  EXPECT_NE(got[1].find("\"id\":\"after\""), std::string::npos) << got[1];
  EXPECT_NE(got[1].find("\"verdict\":"), std::string::npos) << got[1];
}

// ------------------------------------------------- concurrency and EOF ----

TEST(NetServer, ConcurrentConnectionsKeepPerConnectionOrder) {
  net::ServerConfig config = test_config(4);
  net::AsyncServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr unsigned kConns = 8;
  constexpr std::uint64_t kPerConn = 50;
  std::vector<std::vector<std::string>> replies(kConns);
  {
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kConns; ++c) {
      clients.emplace_back([&, c] {
        const int fd = must_connect(server.port());
        std::string wire;
        for (std::uint64_t i = 0; i < kPerConn; ++i) {
          // Half the keys are shared across connections (cross-conn cache
          // traffic on the owning shards), half are private.
          const std::uint64_t g = (i % 2 == 0) ? i : 1000 + c * kPerConn + i;
          wire += request_line(
              g, "c" + std::to_string(c) + "-" + std::to_string(i));
          wire += '\n';
        }
        send_all(fd, wire);
        ::shutdown(fd, SHUT_WR);
        replies[c] = read_lines(fd, kPerConn);
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.stop();

  for (unsigned c = 0; c < kConns; ++c) {
    ASSERT_EQ(replies[c].size(), kPerConn) << "connection " << c;
    for (std::uint64_t i = 0; i < kPerConn; ++i) {
      const std::string id =
          "\"id\":\"c" + std::to_string(c) + "-" + std::to_string(i) + "\"";
      EXPECT_NE(replies[c][i].find(id), std::string::npos)
          << "conn " << c << " response " << i << " out of order: "
          << replies[c][i];
      EXPECT_NE(replies[c][i].find("\"verdict\":"), std::string::npos);
    }
  }
  const net::ServerTotals totals = server.totals();
  EXPECT_EQ(totals.connections, kConns);
  EXPECT_EQ(totals.served, kConns * kPerConn);
}

TEST(NetServer, FinalLineWithoutNewlineIsAnsweredAtEof) {
  net::AsyncServer server(test_config(2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = must_connect(server.port());
  send_all(fd, request_line(5, "no-newline"));  // note: no trailing '\n'
  ::shutdown(fd, SHUT_WR);
  const std::vector<std::string> got = read_lines(fd, 1);
  ::close(fd);
  server.stop();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].find("\"id\":\"no-newline\""), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("\"verdict\":"), std::string::npos) << got[0];
}

TEST(NetServer, StatsRequestAnsweredInStreamOrder) {
  net::AsyncServer server(test_config(2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = must_connect(server.port());
  send_all(fd, request_line(2, "before") + "\n" +
                   "{\"id\":\"snap\",\"stats\":true}\n" +
                   request_line(9, "later") + "\n");
  ::shutdown(fd, SHUT_WR);
  const std::vector<std::string> got = read_lines(fd, 3);
  ::close(fd);
  server.stop();

  ASSERT_EQ(got.size(), 3u);
  EXPECT_NE(got[0].find("\"id\":\"before\""), std::string::npos);
  EXPECT_NE(got[1].find("\"id\":\"snap\""), std::string::npos) << got[1];
  EXPECT_NE(got[1].find("\"stats\":"), std::string::npos) << got[1];
  // The snapshot reflects the request answered before it on this stream.
  EXPECT_NE(got[1].find("reconf_svc_requests_total"), std::string::npos)
      << got[1];
  EXPECT_NE(got[2].find("\"id\":\"later\""), std::string::npos);
}

TEST(NetServer, ShedModeAnswersEveryRequest) {
  net::ServerConfig config = test_config(1);
  config.ring_capacity = 4;  // tiny ring forces the overload path
  config.shed_on_overload = true;
  net::AsyncServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  constexpr std::uint64_t kCount = 400;
  std::string wire;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    wire += request_line(i, "s" + std::to_string(i)) + "\n";
  }
  const int fd = must_connect(server.port());
  std::thread writer([&] {
    send_all(fd, wire);
    ::shutdown(fd, SHUT_WR);
  });
  const std::vector<std::string> got = read_lines(fd, kCount);
  writer.join();
  ::close(fd);
  server.stop();

  // Overload may shed any subset, but every request gets exactly one
  // response, in order, and a shed is marked as such — never dropped.
  ASSERT_EQ(got.size(), kCount);
  std::uint64_t verdicts = 0;
  std::uint64_t sheds = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const std::string id = "\"id\":\"s" + std::to_string(i) + "\"";
    ASSERT_NE(got[i].find(id), std::string::npos) << got[i];
    if (got[i].find("\"verdict\":") != std::string::npos) {
      ++verdicts;
    } else if (got[i].find("\"shed\":\"queue\"") != std::string::npos) {
      ++sheds;
    } else {
      FAIL() << "unexpected response: " << got[i];
    }
  }
  EXPECT_EQ(verdicts + sheds, kCount);
  EXPECT_EQ(server.totals().sheds, sheds);
}

// ------------------------------------------- snapshot topology change ----

TEST(NetServer, SnapshotWarmRestoreAcrossShardCounts) {
  TempDir dir;
  const std::string snap = (dir.path / "verdicts.snap").string();

  // Serve under 3 shards, save the merged snapshot.
  {
    net::AsyncServer server(test_config(3));
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const int fd = must_connect(server.port());
    std::string wire;
    for (std::uint64_t g = 0; g < 30; ++g) {
      wire += request_line(g, "w" + std::to_string(g)) + "\n";
    }
    send_all(fd, wire);
    ::shutdown(fd, SHUT_WR);
    EXPECT_EQ(read_lines(fd, 30).size(), 30u);
    ::close(fd);
    server.stop();
    ASSERT_TRUE(server.save_cache_snapshot(snap, &error)) << error;
  }

  // Restore under 5 shards: every key must be rehashed to its new owner,
  // so each replayed request is a hit.
  {
    net::AsyncServer server(test_config(5));
    std::string error;
    std::size_t restored = 0;
    ASSERT_TRUE(server.load_cache_snapshot(snap, &restored, &error)) << error;
    EXPECT_EQ(restored, 30u);
    ASSERT_TRUE(server.start(&error)) << error;
    const int fd = must_connect(server.port());
    std::string wire;
    for (std::uint64_t g = 0; g < 30; ++g) {
      wire += request_line(g, "r" + std::to_string(g)) + "\n";
    }
    send_all(fd, wire);
    ::shutdown(fd, SHUT_WR);
    const std::vector<std::string> got = read_lines(fd, 30);
    ::close(fd);
    server.stop();
    ASSERT_EQ(got.size(), 30u);
    for (const std::string& line : got) {
      EXPECT_NE(line.find("\"cache\":\"hit\""), std::string::npos) << line;
    }
    const svc::CacheStats stats = server.cache_stats();
    EXPECT_EQ(stats.hits, 30u);
    EXPECT_EQ(stats.misses, 0u);
  }

  // The same v1 snapshot also warm-starts the striped stdio cache — the
  // format is topology-free in both directions.
  {
    svc::VerdictCache striped(4096);
    std::size_t restored = 0;
    std::string error;
    ASSERT_TRUE(striped.load_snapshot(snap, &restored, &error)) << error;
    EXPECT_EQ(restored, 30u);
  }
}

// ----------------------------------------------------------- pinning ----

TEST(NetServer, PinCoresReportsShardCpus) {
  net::ServerConfig config = test_config(2);
  config.pin_cores = true;
  net::AsyncServer server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::vector<int> cpus = server.pinned_cpus();
  ASSERT_EQ(cpus.size(), 2u);
#if defined(__linux__)
  const int cores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (std::size_t shard = 0; shard < cpus.size(); ++shard) {
    EXPECT_EQ(cpus[shard], static_cast<int>(shard) % cores);
  }
#else
  for (const int cpu : cpus) EXPECT_EQ(cpu, -1);
#endif
  server.stop();
}

TEST(ThreadPoolPinning, StatsReportPinnedCpus) {
  ThreadPool pinned(2, /*pin_cores=*/true);
  const PoolStats stats = pinned.stats();
  ASSERT_EQ(stats.pinned_cpus.size(), 2u);
#if defined(__linux__)
  const int cores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_EQ(stats.pinned_cpus[0], 0);
  EXPECT_EQ(stats.pinned_cpus[1], 1 % cores);
#else
  EXPECT_EQ(stats.pinned_cpus[0], -1);
#endif

  ThreadPool unpinned(2);
  for (const int cpu : unpinned.stats().pinned_cpus) EXPECT_EQ(cpu, -1);
}

}  // namespace
}  // namespace reconf
