// ------------------------------------------------------------ chaos --
// Fault-injection & graceful degradation: the fault-plan codec and
// injector, the runtime's recovery policies, the committed chaos corpus
// (bit-stable replay), and a scenario × fault-plan soak that must come out
// invariant-clean under every recovery policy.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "gen/rng.hpp"
#include "rt/prefetch.hpp"
#include "rt/recovery.hpp"
#include "rt/runtime.hpp"
#include "rt/scenario.hpp"

#ifndef RECONF_CORPUS_DIR
#error "RECONF_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace reconf {
namespace {

using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

// ------------------------------------------------------- plan codec ----

FaultPlan storm_plan() {
  FaultPlan plan;
  plan.name = "storm";
  plan.events.push_back({100, FaultKind::kWcetOverrun, "t1", 50, 1, 0, 2});
  plan.events.push_back({200, FaultKind::kPortFail, "", 0, 2, 0, 2});
  plan.events.push_back({300, FaultKind::kPortSlow, "", 0, 1, 800, 3});
  plan.events.push_back({400, FaultKind::kFabric, "t2", 0, 1, 0, 2});
  plan.events.push_back({500, FaultKind::kFabric, "", 0, 1, 0, 2});
  return plan;
}

TEST(FaultPlanCodec, RoundTripsBitExactly) {
  const FaultPlan plan = storm_plan();
  const std::string text = fault::format_fault_plan(plan);
  const FaultPlan back = fault::parse_fault_plan(text);
  EXPECT_EQ(fault::format_fault_plan(back), text);
  ASSERT_EQ(back.events.size(), plan.events.size());
  EXPECT_EQ(back.name, "storm");
  EXPECT_EQ(back.events[0].kind, FaultKind::kWcetOverrun);
  EXPECT_EQ(back.events[0].extra, 50);
  EXPECT_EQ(back.events[2].until, 800);
  EXPECT_EQ(back.events[2].factor, 3);
}

TEST(FaultPlanCodec, RejectsMalformedPlans) {
  // Missing header line.
  EXPECT_THROW(
      fault::parse_fault_plan(R"({"at":1,"fault":"wcet","name":"a","extra":1})"),
      fault::FaultPlanError);
  const std::string header = "{\"fault_plan\":\"x\"}\n";
  // Decreasing `at`.
  EXPECT_THROW(fault::parse_fault_plan(
                   header + R"({"at":9,"fault":"fabric"})" + "\n" +
                   R"({"at":3,"fault":"fabric"})"),
               fault::FaultPlanError);
  // Overrun without a target task or with a non-positive budget.
  EXPECT_THROW(
      fault::parse_fault_plan(header + R"({"at":1,"fault":"wcet","extra":5})"),
      fault::FaultPlanError);
  EXPECT_THROW(fault::parse_fault_plan(
                   header + R"({"at":1,"fault":"wcet","name":"a","extra":0})"),
               fault::FaultPlanError);
  // Slow window that never ends after `at`, and an unknown key.
  EXPECT_THROW(fault::parse_fault_plan(
                   header + R"({"at":5,"fault":"port-slow","until":5})"),
               fault::FaultPlanError);
  EXPECT_THROW(fault::parse_fault_plan(
                   header + R"({"at":1,"fault":"fabric","naem":"a"})"),
               fault::FaultPlanError);
}

TEST(FaultPlanCodec, GeneratorIsDeterministic) {
  fault::FaultPlanGenOptions options;
  options.horizon = 10'000;
  options.names = {"a", "b", "c"};
  options.faults = 12;
  options.seed = 99;
  const FaultPlan one = fault::generate_fault_plan(options);
  const FaultPlan two = fault::generate_fault_plan(options);
  EXPECT_EQ(fault::format_fault_plan(one), fault::format_fault_plan(two));
  EXPECT_EQ(one.events.size(), 12u);
  EXPECT_TRUE(std::is_sorted(
      one.events.begin(), one.events.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; }));
}

// ---------------------------------------------------------- injector ----

TEST(FaultInjector, ConsumesEachEventOnce) {
  const FaultPlan plan = storm_plan();
  fault::FaultInjector inj(plan);
  // Releases before the event's `at` see no overrun; the first at/after
  // consumes it, later releases run clean again.
  EXPECT_EQ(inj.wcet_overrun("t1", 50), 0);
  EXPECT_EQ(inj.wcet_overrun("t1", 150), 50);
  EXPECT_EQ(inj.wcet_overrun("t1", 250), 0);
  EXPECT_EQ(inj.wcet_overrun("t9", 999), 0);  // wrong task never matches
  // count=2 port failures, then the port heals.
  EXPECT_FALSE(inj.load_fails(150));
  EXPECT_TRUE(inj.load_fails(210));
  EXPECT_TRUE(inj.load_fails(220));
  EXPECT_FALSE(inj.load_fails(230));
  // Slow window [300, 800): factor 3 inside, 1 outside.
  EXPECT_EQ(inj.load_factor(299), 1);
  EXPECT_EQ(inj.load_factor(300), 3);
  EXPECT_EQ(inj.load_factor(799), 3);
  EXPECT_EQ(inj.load_factor(800), 1);
  // Fabric events drain in order, once.
  EXPECT_EQ(inj.next_fabric_at(0), 400);
  EXPECT_EQ(inj.take_fabric_faults(399).size(), 0u);
  EXPECT_EQ(inj.take_fabric_faults(450).size(), 1u);
  EXPECT_EQ(inj.next_fabric_at(450), 500);
  EXPECT_EQ(inj.take_fabric_faults(10'000).size(), 1u);
  EXPECT_EQ(inj.next_fabric_at(450), kNoTick);

  const fault::InjectedCounts& counts = inj.injected();
  EXPECT_EQ(counts.wcet_overruns, 1u);
  EXPECT_EQ(counts.port_failures, 2u);
  EXPECT_EQ(counts.port_slow_events, 1u);
  EXPECT_EQ(counts.fabric_faults, 2u);
}

// ---------------------------------------------------------- shrinker ----

TEST(FaultPlanShrink, ReducesToTheOneGuiltyEvent) {
  fault::FaultPlanGenOptions options;
  options.horizon = 5'000;
  options.names = {"a", "b"};
  options.faults = 16;
  options.seed = 4;
  FaultPlan plan = fault::generate_fault_plan(options);
  plan.events.push_back({4'900, FaultKind::kWcetOverrun, "a", 777, 1, 0, 2});

  // "Failure" = the plan still schedules an overrun of at least 300 for a.
  const auto still_fails = [](const FaultPlan& candidate) {
    for (const FaultEvent& e : candidate.events) {
      if (e.kind == FaultKind::kWcetOverrun && e.name == "a" &&
          e.extra >= 300) {
        return true;
      }
    }
    return false;
  };
  const FaultPlan shrunk = fault::shrink_fault_plan(plan, still_fails);
  ASSERT_EQ(shrunk.events.size(), 1u);
  EXPECT_EQ(shrunk.events[0].kind, FaultKind::kWcetOverrun);
  EXPECT_EQ(shrunk.events[0].name, "a");
  // Field bisection drives `extra` to the smallest still-failing value.
  EXPECT_EQ(shrunk.events[0].extra, 300);
}

TEST(FaultPlanShrink, ReturnsInputWhenItDoesNotFail) {
  const FaultPlan plan = storm_plan();
  const FaultPlan same =
      fault::shrink_fault_plan(plan, [](const FaultPlan&) { return false; });
  EXPECT_EQ(fault::format_fault_plan(same), fault::format_fault_plan(plan));
}

// ------------------------------------------------- recovery semantics ----

/// Three tasks on a width-100 device; "lo" is the designated shed victim
/// (value 1). Zero reconfiguration cost so post-shed protection arms.
rt::Scenario overload_scenario() {
  const std::string text =
      "{\"scenario\":\"shed-overload\",\"device\":100,\"horizon\":6000}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"hi\",\"c\":40,\"d\":100,"
      "\"t\":100,\"a\":60,\"value\":5}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"lo\",\"c\":40,\"d\":100,"
      "\"t\":100,\"a\":40}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"mid\",\"c\":30,\"d\":120,"
      "\"t\":120,\"a\":50,\"value\":3}\n";
  return rt::parse_scenario(text);
}

FaultPlan overrun_plan() {
  FaultPlan plan;
  plan.name = "hi-overruns";
  plan.events.push_back({200, FaultKind::kWcetOverrun, "hi", 1'500, 1, 0, 2});
  plan.events.push_back({500, FaultKind::kWcetOverrun, "hi", 1'500, 1, 0, 2});
  return plan;
}

rt::RuntimeResult run_with(const rt::Scenario& scenario, const FaultPlan& plan,
                           rt::OverrunAction action,
                           rt::PrefetchKind prefetch = rt::PrefetchKind::kNone) {
  rt::RuntimeConfig config;
  config.prefetch = prefetch;
  config.faults = &plan;
  config.recovery.overrun = action;
  config.record_trace = false;
  return rt::run_scenario(scenario, config);
}

TEST(Recovery, AbortPreservesAdmittedDeadlines) {
  const rt::Scenario scenario = overload_scenario();
  const FaultPlan plan = overrun_plan();
  for (const rt::OverrunAction action :
       {rt::OverrunAction::kAbort, rt::OverrunAction::kSkipNext}) {
    const rt::RuntimeResult result = run_with(scenario, plan, action);
    EXPECT_TRUE(result.invariant_violations.empty());
    // Budget enforcement keeps the WCET assumption, so the admitted set
    // stays guaranteed: the overruns fire but nobody misses.
    EXPECT_EQ(result.faults.wcet_overruns, 2u);
    EXPECT_EQ(result.deadline_misses, 0u) << to_string(action);
    EXPECT_EQ(result.faults.sheds, 0u);
  }
}

TEST(Recovery, SkipNextSuppressesOneRelease) {
  const rt::Scenario scenario = overload_scenario();
  const FaultPlan plan = overrun_plan();
  const rt::RuntimeResult abort_run =
      run_with(scenario, plan, rt::OverrunAction::kAbort);
  const rt::RuntimeResult skip_run =
      run_with(scenario, plan, rt::OverrunAction::kSkipNext);
  EXPECT_EQ(skip_run.faults.overrun_skips, 2u);
  // The overrun payback: one release fewer per skipped period.
  EXPECT_EQ(skip_run.releases + skip_run.faults.overrun_skips,
            abort_run.releases);
}

TEST(Recovery, DegradeShedsLowestValueAndProtectsSurvivors) {
  const rt::Scenario scenario = overload_scenario();
  const FaultPlan plan = overrun_plan();
  const rt::RuntimeResult result =
      run_with(scenario, plan, rt::OverrunAction::kDegrade);
  EXPECT_TRUE(result.invariant_violations.empty());
  EXPECT_EQ(result.faults.overrun_degrades, 2u);
  // The degraded long job overloads the fabric, misses accumulate, and
  // graceful degradation sheds exactly the value-1 task.
  EXPECT_GE(result.deadline_misses, 2u);
  ASSERT_EQ(result.faults.sheds, 1u);
  ASSERT_EQ(result.sheds.size(), 1u);
  EXPECT_EQ(result.sheds[0].name, "lo");
  EXPECT_FALSE(result.sheds[0].revalidation_reject);
  // Survivors were re-validated through a fresh AdmissionSession and the
  // InvariantChecker held them to it: no post-shed misses.
  EXPECT_EQ(result.faults.post_shed_misses, 0u);
  // The shed task releases nothing after the shed: its account stops.
  const auto lo = std::find_if(
      result.tasks.begin(), result.tasks.end(),
      [](const rt::TaskAccount& t) { return t.name == "lo"; });
  ASSERT_NE(lo, result.tasks.end());
  EXPECT_LT(lo->released, result.horizon / 100u);
}

TEST(Recovery, PortRetryWithBoundedBackoff) {
  rt::RecoveryPolicy policy;
  policy.retry_backoff = 8;
  policy.retry_backoff_cap = 128;
  EXPECT_EQ(policy.backoff_after(0), 0);
  EXPECT_EQ(policy.backoff_after(1), 8);
  EXPECT_EQ(policy.backoff_after(2), 16);
  EXPECT_EQ(policy.backoff_after(4), 64);
  EXPECT_EQ(policy.backoff_after(5), 128);
  EXPECT_EQ(policy.backoff_after(50), 128);  // bounded, never overflows
}

TEST(Recovery, PortFailuresRetryThenRecover) {
  // Reconf-heavy generated scenario with a reconfiguration cost, port
  // failures injected at every load for a while: the runtime must retry
  // with backoff and still finish invariant-clean.
  rt::ScenarioGenOptions sgen;
  sgen.family = rt::ScenarioFamily::kReconfHeavy;
  sgen.arrivals = 5;
  sgen.seed = 21;
  rt::Scenario scenario = rt::generate_scenario(sgen);
  FaultPlan plan;
  plan.name = "port-storm";
  plan.events.push_back(
      {scenario.horizon / 4, FaultKind::kPortFail, "", 0, 3, 0, 2});
  plan.events.push_back(
      {scenario.horizon / 2, FaultKind::kPortSlow, "", 0, 1,
       scenario.horizon / 2 + 2'000, 4});
  const rt::RuntimeResult result = run_with(
      scenario, plan, rt::OverrunAction::kAbort, rt::PrefetchKind::kHybrid);
  EXPECT_TRUE(result.invariant_violations.empty());
  EXPECT_EQ(result.faults.port_failures, 3u);
  EXPECT_GT(result.faults.load_retries + result.faults.prefetch_refails, 0u);
  EXPECT_GT(result.faults.retry_backoff_ticks, 0);
}

TEST(Recovery, RunsAreDeterministic) {
  const rt::Scenario scenario = overload_scenario();
  const FaultPlan plan = overrun_plan();
  for (const rt::OverrunAction action :
       {rt::OverrunAction::kAbort, rt::OverrunAction::kSkipNext,
        rt::OverrunAction::kDegrade}) {
    const std::string one =
        run_with(scenario, plan, action).summary_json();
    const std::string two =
        run_with(scenario, plan, action).summary_json();
    EXPECT_EQ(one, two) << to_string(action);
  }
}

TEST(Recovery, FaultFreeSummaryHasNoFaultSection) {
  // The "faults" field is gated on fault_mode so the pre-existing scenario
  // corpus expect-lines stay byte-identical.
  const rt::Scenario scenario = overload_scenario();
  rt::RuntimeConfig config;
  config.record_trace = false;
  const rt::RuntimeResult result = rt::run_scenario(scenario, config);
  EXPECT_FALSE(result.fault_mode);
  EXPECT_EQ(result.summary_json().find("\"faults\""), std::string::npos);
  const FaultPlan empty_plan;
  const rt::RuntimeResult faulted =
      run_with(scenario, empty_plan, rt::OverrunAction::kAbort);
  EXPECT_TRUE(faulted.fault_mode);
  EXPECT_NE(faulted.summary_json().find("\"faults\""), std::string::npos);
}

// ------------------------------------------------------ chaos corpus ----

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir =
      std::filesystem::path(RECONF_CORPUS_DIR) / "faults";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".chaos") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ChaosRunConfig {
  rt::OverrunAction overrun;
  rt::PrefetchKind prefetch;
};

ChaosRunConfig decode_config(const std::string& text) {
  const std::size_t slash = text.find('/');
  EXPECT_NE(slash, std::string::npos) << text;
  const auto action = rt::overrun_action_from(text.substr(0, slash));
  const auto prefetch = rt::prefetch_kind_from(text.substr(slash + 1));
  EXPECT_TRUE(action.has_value()) << text;
  EXPECT_TRUE(prefetch.has_value()) << text;
  return {action.value_or(rt::OverrunAction::kAbort),
          prefetch.value_or(rt::PrefetchKind::kNone)};
}

TEST(ChaosCorpus, ReplaysBitStably) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 3u) << "chaos corpus went missing";
  std::size_t expects = 0;
  for (const auto& path : files) {
    const fault::ChaosCase c = fault::parse_chaos_case(read_file(path));
    ASSERT_FALSE(c.expects.empty()) << path;
    for (const fault::ChaosExpect& expect : c.expects) {
      const ChaosRunConfig config = decode_config(expect.config);
      const rt::RuntimeResult result =
          run_with(c.scenario, c.plan, config.overrun, config.prefetch);
      EXPECT_EQ(result.summary_json(), expect.summary)
          << path << " [" << expect.config << "]";
      EXPECT_TRUE(result.invariant_violations.empty())
          << path << " [" << expect.config << "]";
      ++expects;
    }
  }
  EXPECT_GE(expects, 9u);
}

TEST(ChaosCorpus, FormatRoundTripsTheCommittedFiles) {
  for (const auto& path : corpus_files()) {
    const std::string text = read_file(path);
    const fault::ChaosCase c = fault::parse_chaos_case(text);
    EXPECT_EQ(fault::format_chaos_case(c), text) << path;
  }
}

// -------------------------------------------------------------- soak ----

/// ≥1k scenario × fault-plan draws through every recovery policy; every run
/// must be invariant-clean and keep the fault-accounting conservation law.
/// Mirrors tools/reconf_chaos --count=1026 (smaller per-draw sizes keep the
/// test under a second in Release).
TEST(ChaosSoak, ThousandDrawsInvariantClean) {
  static constexpr rt::ScenarioFamily kFamilies[] = {
      rt::ScenarioFamily::kSteady, rt::ScenarioFamily::kChurn,
      rt::ScenarioFamily::kReconfHeavy};
  static constexpr rt::OverrunAction kActions[] = {
      rt::OverrunAction::kAbort, rt::OverrunAction::kSkipNext,
      rt::OverrunAction::kDegrade};
  static constexpr rt::PrefetchKind kPrefetch[] = {rt::PrefetchKind::kNone,
                                                   rt::PrefetchKind::kStatic,
                                                   rt::PrefetchKind::kHybrid};
  std::uint64_t total_injected = 0;
  const int draws = 1'026;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t seed =
        gen::derive_seed(0xC4A05u, static_cast<std::uint64_t>(i));
    rt::ScenarioGenOptions sgen;
    sgen.family = kFamilies[i % std::size(kFamilies)];
    sgen.arrivals = 4;
    sgen.seed = seed;
    const rt::Scenario scenario = rt::generate_scenario(sgen);

    fault::FaultPlanGenOptions pgen;
    pgen.horizon = scenario.horizon;
    for (const rt::ScenarioEvent& e : scenario.events) {
      if (e.kind == rt::EventKind::kArrive) pgen.names.push_back(e.name);
    }
    pgen.faults = 8;
    pgen.seed = seed;
    const FaultPlan plan = fault::generate_fault_plan(pgen);

    const rt::RuntimeResult result =
        run_with(scenario, plan, kActions[(i / 3) % std::size(kActions)],
                 kPrefetch[i % std::size(kPrefetch)]);
    ASSERT_TRUE(result.invariant_violations.empty())
        << "draw " << i << " seed " << seed << ": "
        << result.invariant_violations.front();
    const rt::FaultRecoveryStats& f = result.faults;
    ASSERT_LE(f.overrun_aborts + f.overrun_skips + f.overrun_degrades,
              f.wcet_overruns)
        << "draw " << i;
    total_injected += f.wcet_overruns + f.port_failures + f.port_slow_events +
                      f.fabric_faults;
  }
  // The soak must actually inject — a silent no-op sweep proves nothing.
  EXPECT_GT(total_injected, static_cast<std::uint64_t>(draws));
}

}  // namespace
}  // namespace reconf
