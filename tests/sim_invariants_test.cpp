// Trace-level validation of the work-conserving lemmas the paper's bounds
// rest on (Section 3): Lemma 1 for EDF-FkF, Lemma 2 for EDF-NF, and the
// FkF prefix property, checked at every dispatch of randomized simulations.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "task/io.hpp"
#include "task/task.hpp"

namespace reconf::sim {
namespace {

struct InvariantCase {
  std::uint64_t seed;
  int num_tasks;
  double target_us;
  SchedulerKind scheduler;
};

class InvariantSweep : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(InvariantSweep, DispatchInvariantsHoldThroughoutTheRun) {
  const InvariantCase& c = GetParam();
  const Device dev{100};

  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(c.num_tasks);
  req.target_system_util = c.target_us;
  req.seed = c.seed;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  SimConfig cfg;
  cfg.scheduler = c.scheduler;
  cfg.horizon_periods = 60;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;  // overload stresses the lemmas hardest
  const SimResult r = simulate(*ts, dev, cfg);

  EXPECT_TRUE(r.invariant_violations.empty())
      << r.invariant_violations.front() << "\n"
      << io::to_string(*ts, dev);
  EXPECT_GT(r.dispatches, 0u);
}

std::vector<InvariantCase> invariant_cases() {
  std::vector<InvariantCase> cases;
  for (const auto kind : {SchedulerKind::kEdfNf, SchedulerKind::kEdfFkF}) {
    for (const int n : {4, 10, 20}) {
      // Include heavy overload (US up to 1.5x capacity): the alpha bounds
      // must hold precisely when the queue is backed up.
      for (const double us : {40.0, 80.0, 120.0, 150.0}) {
        for (std::uint64_t s = 0; s < 6; ++s) {
          cases.push_back(
              {0x1E44A + s * 31 + static_cast<std::uint64_t>(n), n, us, kind});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTasksets, InvariantSweep, ::testing::ValuesIn(invariant_cases()),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      const InvariantCase& c = info.param;
      return std::string(c.scheduler == SchedulerKind::kEdfNf ? "NF" : "FkF") +
             "_n" + std::to_string(c.num_tasks) + "_us" +
             std::to_string(static_cast<int>(c.target_us)) + "_s" +
             std::to_string(c.seed & 0xFFFF);
    });

// --------------------------------------------------------------- directed --
TEST(InvariantChecker, ObserverCollectsNothingOnCleanRun) {
  const TaskSet ts({make_task(2, 5, 5, 6), make_task(2, 5, 5, 6)});
  InvariantChecker checker(SchedulerKind::kEdfNf,
                           PlacementMode::kUnrestrictedMigration);
  SimConfig cfg;
  cfg.observer = &checker;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(checker.clean());
  EXPECT_GT(checker.dispatches_seen(), 0u);
}

TEST(InvariantChecker, Lemma1BoundIsTightInTheBlockingScenario) {
  // FkF with a queue head too wide to fit: occupied area must still be at
  // least A(H) - (A_max - 1) = 10 - 8 = 2 whenever jobs wait.
  const TaskSet ts({
      make_task(4, 10, 10, 9),  // wide head
      make_task(4, 10, 10, 2),  // narrow, blocked behind it under FkF
  });
  SimConfig cfg;
  cfg.scheduler = SchedulerKind::kEdfFkF;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.invariant_violations.empty());
}

TEST(InvariantChecker, PlacementModeSkipsLemmaChecks) {
  // Under contiguous placement fragmentation may legally drop occupancy
  // below the lemma bounds; only the cap and prefix checks apply.
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(10);
  req.target_system_util = 90.0;
  req.seed = 0xF4A6;
  const auto ts = gen::generate_with_retries(req);
  ASSERT_TRUE(ts.has_value());

  SimConfig cfg;
  cfg.scheduler = SchedulerKind::kEdfNf;
  cfg.placement = PlacementMode::kContiguousNoMigration;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;
  cfg.horizon_periods = 40;
  const SimResult r = simulate(*ts, Device{100}, cfg);
  EXPECT_TRUE(r.invariant_violations.empty())
      << r.invariant_violations.front();
}

}  // namespace
}  // namespace reconf::sim
