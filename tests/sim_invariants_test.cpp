// Trace-level validation of the structural properties the paper's bounds
// rest on (Section 3): the work-conserving lemmas (Lemma 1 for EDF-FkF,
// Lemma 2 for EDF-NF), the FkF prefix property, exact EDF dispatch order,
// and first-miss-time monotonicity — checked at every dispatch of
// randomized simulations, including the oracle's adversarial families.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "oracle/families.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/observer.hpp"
#include "task/io.hpp"
#include "task/job.hpp"
#include "task/task.hpp"

namespace reconf::sim {
namespace {

struct InvariantCase {
  std::uint64_t seed;
  int num_tasks;
  double target_us;
  SchedulerKind scheduler;
};

class InvariantSweep : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(InvariantSweep, DispatchInvariantsHoldThroughoutTheRun) {
  const InvariantCase& c = GetParam();
  const Device dev{100};

  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(c.num_tasks);
  req.target_system_util = c.target_us;
  req.seed = c.seed;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  SimConfig cfg;
  cfg.scheduler = c.scheduler;
  cfg.horizon_periods = 60;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;  // overload stresses the lemmas hardest
  const SimResult r = simulate(*ts, dev, cfg);

  EXPECT_TRUE(r.invariant_violations.empty())
      << r.invariant_violations.front() << "\n"
      << io::to_string(*ts, dev);
  EXPECT_GT(r.dispatches, 0u);
}

std::vector<InvariantCase> invariant_cases() {
  std::vector<InvariantCase> cases;
  for (const auto kind : {SchedulerKind::kEdfNf, SchedulerKind::kEdfFkF}) {
    for (const int n : {4, 10, 20}) {
      // Include heavy overload (US up to 1.5x capacity): the alpha bounds
      // must hold precisely when the queue is backed up.
      for (const double us : {40.0, 80.0, 120.0, 150.0}) {
        for (std::uint64_t s = 0; s < 6; ++s) {
          cases.push_back(
              {0x1E44A + s * 31 + static_cast<std::uint64_t>(n), n, us, kind});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTasksets, InvariantSweep, ::testing::ValuesIn(invariant_cases()),
    [](const ::testing::TestParamInfo<InvariantCase>& info) {
      const InvariantCase& c = info.param;
      return std::string(c.scheduler == SchedulerKind::kEdfNf ? "NF" : "FkF") +
             "_n" + std::to_string(c.num_tasks) + "_us" +
             std::to_string(static_cast<int>(c.target_us)) + "_s" +
             std::to_string(c.seed & 0xFFFF);
    });

// --------------------------------------------------------------- directed --
TEST(InvariantChecker, ObserverCollectsNothingOnCleanRun) {
  const TaskSet ts({make_task(2, 5, 5, 6), make_task(2, 5, 5, 6)});
  InvariantChecker checker(SchedulerKind::kEdfNf,
                           PlacementMode::kUnrestrictedMigration);
  SimConfig cfg;
  cfg.observer = &checker;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_TRUE(checker.clean());
  EXPECT_GT(checker.dispatches_seen(), 0u);
}

TEST(InvariantChecker, Lemma1BoundIsTightInTheBlockingScenario) {
  // FkF with a queue head too wide to fit: occupied area must still be at
  // least A(H) - (A_max - 1) = 10 - 8 = 2 whenever jobs wait.
  const TaskSet ts({
      make_task(4, 10, 10, 9),  // wide head
      make_task(4, 10, 10, 2),  // narrow, blocked behind it under FkF
  });
  SimConfig cfg;
  cfg.scheduler = SchedulerKind::kEdfFkF;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.invariant_violations.empty());
}

TEST(InvariantChecker, PlacementModeSkipsLemmaChecks) {
  // Under contiguous placement fragmentation may legally drop occupancy
  // below the lemma bounds; only the cap and prefix checks apply.
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(10);
  req.target_system_util = 90.0;
  req.seed = 0xF4A6;
  const auto ts = gen::generate_with_retries(req);
  ASSERT_TRUE(ts.has_value());

  SimConfig cfg;
  cfg.scheduler = SchedulerKind::kEdfNf;
  cfg.placement = PlacementMode::kContiguousNoMigration;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;
  cfg.horizon_periods = 40;
  const SimResult r = simulate(*ts, Device{100}, cfg);
  EXPECT_TRUE(r.invariant_violations.empty())
      << r.invariant_violations.front();
}

// ---------------------------------------------------- oracle-trace fuzz --
// The tightened checks under adversarial load: every family of the fuzz
// oracle, both global EDF schedulers, overload included. These are the
// traces the differential oracle adjudicates with, so the checker must stay
// silent on all of them.

struct OracleTraceCase {
  oracle::FuzzFamily family;
  std::uint64_t seed;
  SchedulerKind scheduler;
};

class OracleTraceSweep : public ::testing::TestWithParam<OracleTraceCase> {};

TEST_P(OracleTraceSweep, TightenedInvariantsHoldOnOracleTraces) {
  const OracleTraceCase& c = GetParam();
  oracle::FamilyRequest req;
  req.family = c.family;
  req.num_tasks = 8;
  req.seed = c.seed;
  const oracle::FuzzCase fuzz = oracle::make_fuzz_case(req);

  SimConfig cfg;
  cfg.scheduler = c.scheduler;
  cfg.horizon_periods = 40;
  cfg.check_invariants = true;
  cfg.stop_on_first_miss = false;  // overload stresses every check hardest
  const SimResult r = simulate(fuzz.taskset, fuzz.device, cfg);
  EXPECT_TRUE(r.invariant_violations.empty())
      << r.invariant_violations.front() << "\n"
      << io::to_string(fuzz.taskset, fuzz.device);
  EXPECT_GT(r.dispatches, 0u);
}

std::vector<OracleTraceCase> oracle_trace_cases() {
  std::vector<OracleTraceCase> cases;
  for (const auto kind : {SchedulerKind::kEdfNf, SchedulerKind::kEdfFkF}) {
    for (const auto family : oracle::all_families()) {
      for (std::uint64_t s = 0; s < 4; ++s) {
        cases.push_back({family, 0x7 + s * 97, kind});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    OracleFamilies, OracleTraceSweep,
    ::testing::ValuesIn(oracle_trace_cases()),
    [](const ::testing::TestParamInfo<OracleTraceCase>& info) {
      const OracleTraceCase& c = info.param;
      return std::string(c.scheduler == SchedulerKind::kEdfNf ? "NF" : "FkF") +
             "_" + oracle::to_string(c.family) + "_s" +
             std::to_string(c.seed & 0xFFFF);
    });

// ------------------------------------------------------ EDF dispatch order --

/// Observer re-deriving the dispatch-order and greedy-fit properties from
/// the raw snapshot, independently of the InvariantChecker implementation.
class EdfOrderObserver final : public DispatchObserver {
 public:
  void on_dispatch(const DispatchSnapshot& snap, const TaskSet&,
                   Device device) override {
    ++dispatches_;
    for (std::size_t i = 1; i < snap.active.size(); ++i) {
      // The queue is one strict-weak-order sort: no later job may outrank
      // an earlier one.
      if (edf_before(snap.active[i], snap.active[i - 1])) ++order_errors_;
    }
    Area occupied = 0;
    for (std::size_t i = 0; i < snap.active.size(); ++i) {
      if (snap.running[i] != 0) occupied += snap.active[i].area;
    }
    // Work conservation (NF greedy): any waiting job must genuinely not
    // fit into the free area.
    for (std::size_t i = 0; i < snap.active.size(); ++i) {
      if (snap.running[i] == 0 &&
          occupied + snap.active[i].area <= device.width) {
        ++conservation_errors_;
      }
    }
  }

  std::uint64_t dispatches_ = 0;
  std::uint64_t order_errors_ = 0;
  std::uint64_t conservation_errors_ = 0;
};

TEST(EdfDispatchOrder, QueueIsSortedAndNfIsGreedyOnOracleTraces) {
  for (const auto family :
       {oracle::FuzzFamily::kNearBoundary, oracle::FuzzFamily::kZeroLaxity,
        oracle::FuzzFamily::kHeavyTailArbitrary}) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      oracle::FamilyRequest req;
      req.family = family;
      req.num_tasks = 10;
      req.seed = 0xED5 + s;
      const oracle::FuzzCase fuzz = oracle::make_fuzz_case(req);

      EdfOrderObserver observer;
      SimConfig cfg;
      cfg.scheduler = SchedulerKind::kEdfNf;
      cfg.horizon_periods = 30;
      cfg.stop_on_first_miss = false;
      cfg.observer = &observer;
      (void)simulate(fuzz.taskset, fuzz.device, cfg);

      EXPECT_GT(observer.dispatches_, 0u);
      EXPECT_EQ(observer.order_errors_, 0u)
          << oracle::to_string(family) << " seed " << s;
      EXPECT_EQ(observer.conservation_errors_, 0u)
          << oracle::to_string(family) << " seed " << s;
    }
  }
}

TEST(InvariantChecker, FlagsAnOutOfOrderQueue) {
  // Feed the checker a hand-built snapshot violating EDF order: it must
  // complain (guards against the checker itself rotting into a no-op).
  InvariantChecker checker(SchedulerKind::kEdfNf,
                           PlacementMode::kUnrestrictedMigration);
  Job early;
  early.task_index = 0;
  early.abs_deadline = 5;
  early.remaining = 1;
  early.area = 1;
  Job late;
  late.task_index = 1;
  late.abs_deadline = 9;
  late.remaining = 1;
  late.area = 1;
  const Job active[] = {late, early};  // wrong order
  const std::uint8_t running[] = {1, 1};
  DispatchSnapshot snap;
  snap.now = 0;
  snap.active = active;
  snap.running = running;
  snap.occupied = 2;
  const TaskSet ts({make_task(1, 5, 5, 1, "a", 1),
                    make_task(1, 9, 9, 1, "b", 1)});
  checker.on_dispatch(snap, ts, Device{4});
  ASSERT_FALSE(checker.clean());
  EXPECT_NE(checker.violations().front().find("EDF order"),
            std::string::npos);
}

// --------------------------------------------------- first-miss monotonicity

TEST(FirstMissMonotonicity, FirstMissIsInvariantUnderHorizonExtension) {
  // If a run misses within horizon H, the same run observed to any longer
  // horizon must report the identical first miss (task, sequence,
  // deadline); if it was clean to H, a longer run may only miss later.
  int checked = 0;
  for (const auto family : oracle::all_families()) {
    for (std::uint64_t s = 0; s < 6; ++s) {
      oracle::FamilyRequest req;
      req.family = family;
      req.num_tasks = 6;
      req.seed = 0x3317 + s * 13;
      const oracle::FuzzCase fuzz = oracle::make_fuzz_case(req);

      SimConfig short_cfg;
      short_cfg.horizon_periods = 20;
      const SimResult short_run = simulate(fuzz.taskset, fuzz.device,
                                           short_cfg);
      SimConfig long_cfg;
      long_cfg.horizon_periods = 45;
      const SimResult long_run = simulate(fuzz.taskset, fuzz.device,
                                          long_cfg);

      if (short_run.first_miss) {
        ASSERT_TRUE(long_run.first_miss.has_value())
            << io::to_string(fuzz.taskset, fuzz.device);
        EXPECT_EQ(long_run.first_miss->task_index,
                  short_run.first_miss->task_index);
        EXPECT_EQ(long_run.first_miss->sequence,
                  short_run.first_miss->sequence);
        EXPECT_EQ(long_run.first_miss->deadline,
                  short_run.first_miss->deadline);
        ++checked;
      } else if (long_run.first_miss) {
        EXPECT_GT(long_run.first_miss->deadline, short_run.horizon);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0) << "sweep never produced a miss to check";
}

TEST(FirstMissMonotonicity, StopModeDoesNotChangeTheFirstMiss) {
  for (std::uint64_t s = 0; s < 8; ++s) {
    oracle::FamilyRequest req;
    req.family = oracle::FuzzFamily::kNearBoundary;
    req.num_tasks = 8;
    req.seed = 0xCAFE + s;
    const oracle::FuzzCase fuzz = oracle::make_fuzz_case(req);

    SimConfig stop_cfg;
    stop_cfg.stop_on_first_miss = true;
    SimConfig continue_cfg;
    continue_cfg.stop_on_first_miss = false;
    const SimResult stopped = simulate(fuzz.taskset, fuzz.device, stop_cfg);
    const SimResult continued =
        simulate(fuzz.taskset, fuzz.device, continue_cfg);

    ASSERT_EQ(stopped.first_miss.has_value(),
              continued.first_miss.has_value());
    if (stopped.first_miss) {
      EXPECT_EQ(stopped.first_miss->task_index,
                continued.first_miss->task_index);
      EXPECT_EQ(stopped.first_miss->deadline,
                continued.first_miss->deadline);
      EXPECT_GE(continued.deadline_misses, stopped.deadline_misses);
    }
  }
}

}  // namespace
}  // namespace reconf::sim
