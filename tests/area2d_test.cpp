#include <gtest/gtest.h>

#include "area2d/gen2d.hpp"
#include "area2d/grid_map.hpp"
#include "area2d/sim2d.hpp"
#include "area2d/task2d.hpp"

namespace reconf::area2d {
namespace {

// ------------------------------------------------------------- geometry --
TEST(Rect2D, IntersectionAndContainment) {
  const Rect a{0, 0, 4, 4};
  const Rect b{3, 3, 2, 2};
  const Rect c{4, 0, 2, 2};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));  // edge-adjacent, half-open
  EXPECT_TRUE(a.contains(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(a.contains(b));
  EXPECT_EQ(a.cells(), 16);
}

TEST(Rect2D, WithinDevice) {
  const Device2D dev{10, 8};
  EXPECT_TRUE((Rect{0, 0, 10, 8}).within(dev));
  EXPECT_FALSE((Rect{1, 0, 10, 8}).within(dev));
  EXPECT_FALSE((Rect{0, 0, 0, 1}).within(dev));
}

// -------------------------------------------------------------- GridMap --
TEST(GridMap2D, AllocateReleaseRoundTrip) {
  GridMap map(Device2D{10, 10});
  EXPECT_EQ(map.free_cells(), 100);
  map.allocate(Rect{2, 3, 4, 5});
  EXPECT_EQ(map.free_cells(), 80);
  EXPECT_FALSE(map.is_free(Rect{2, 3, 1, 1}));
  EXPECT_TRUE(map.is_free(Rect{0, 0, 2, 10}));
  map.release(Rect{2, 3, 4, 5});
  EXPECT_EQ(map.free_cells(), 100);
  EXPECT_TRUE(map.is_free(Rect{0, 0, 10, 10}));
}

TEST(GridMap2D, IntegralImageMatchesBruteForce) {
  GridMap map(Device2D{12, 9});
  map.allocate(Rect{0, 0, 3, 3});
  map.allocate(Rect{5, 2, 4, 4});
  map.allocate(Rect{9, 7, 3, 2});
  // Brute-force every subrectangle's freeness against is_free().
  for (Area y = 0; y < 9; ++y) {
    for (Area x = 0; x < 12; ++x) {
      for (Area h = 1; y + h <= 9; h += 3) {
        for (Area w = 1; x + w <= 12; w += 3) {
          const Rect r{x, y, w, h};
          bool brute = true;
          for (Area yy = y; yy < y + h && brute; ++yy) {
            for (Area xx = x; xx < x + w && brute; ++xx) {
              const bool occ = (xx < 3 && yy < 3) ||
                               (xx >= 5 && xx < 9 && yy >= 2 && yy < 6) ||
                               (xx >= 9 && yy >= 7);
              brute = !occ;
            }
          }
          ASSERT_EQ(map.is_free(r), brute) << x << "," << y << " " << w
                                           << "x" << h;
        }
      }
    }
  }
}

TEST(GridMap2D, BottomLeftPicksLowestThenLeftmost) {
  GridMap map(Device2D{10, 10});
  map.allocate(Rect{0, 0, 10, 2});  // block the bottom strip
  const auto pos = map.find_position(3, 3, Strategy2D::kBottomLeft);
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, (Rect{0, 2, 3, 3}));
}

TEST(GridMap2D, ContactPerimeterPrefersCorners) {
  GridMap map(Device2D{10, 10});
  const auto pos = map.find_position(3, 3, Strategy2D::kContactPerimeter);
  ASSERT_TRUE(pos.has_value());
  // On an empty device a corner position touches two borders.
  const bool corner = (pos->x == 0 || pos->right() == 10) &&
                      (pos->y == 0 || pos->top() == 10);
  EXPECT_TRUE(corner) << pos->x << "," << pos->y;
}

TEST(GridMap2D, DetectsFragmentation) {
  GridMap map(Device2D{10, 10});
  // Occupy a plus-shaped region leaving four 4x4-ish corners... actually
  // occupy a cross: center row and column strips.
  map.allocate(Rect{0, 4, 10, 2});
  map.allocate(Rect{4, 0, 2, 4});
  map.allocate(Rect{4, 6, 2, 4});
  // 64 cells free in four 4x4 corners: an 8x4 block fits by area (32 <= 64)
  // but nowhere contiguously.
  EXPECT_TRUE(map.fits_by_area(32));
  EXPECT_FALSE(map.fits_anywhere(8, 4));
  EXPECT_TRUE(map.fits_anywhere(4, 4));
  EXPECT_GT(map.fragmentation(), 0.0);
}

TEST(GridMap2D, FragmentationZeroWhenEmptyOrSquareCoverable) {
  GridMap map(Device2D{8, 8});
  EXPECT_DOUBLE_EQ(map.fragmentation(), 0.0);  // 8x8 square covers all
  map.allocate(Rect{0, 0, 8, 8});
  EXPECT_DOUBLE_EQ(map.fragmentation(), 0.0);  // full: no free space
}

TEST(GridMap2D, ClearRestores) {
  GridMap map(Device2D{6, 6});
  map.allocate(Rect{0, 0, 6, 3});
  map.clear();
  EXPECT_EQ(map.free_cells(), 36);
  EXPECT_TRUE(map.is_free(Rect{0, 0, 6, 6}));
}

// --------------------------------------------------------------- Task2D --
TEST(TaskSet2D, AggregatesAndRelaxation) {
  const TaskSet2D ts({
      make_task2d(2, 5, 5, 3, 4, "a"),   // cells 12, us 4.8
      make_task2d(3, 10, 10, 5, 2, "b"), // cells 10, us 3.0
  });
  EXPECT_EQ(ts.max_cells(), 12);
  EXPECT_NEAR(ts.time_utilization(), 0.7, 1e-12);
  EXPECT_NEAR(ts.system_utilization_cells(), 7.8, 1e-12);

  const TaskSet flat = ts.to_1d_relaxation();
  EXPECT_EQ(flat[0].area, 12);
  EXPECT_EQ(flat[1].area, 10);
  EXPECT_EQ(flat[0].wcet, ts[0].wcet);
  EXPECT_EQ(to_1d_relaxation(Device2D{10, 10}).width, 100);
}

// ---------------------------------------------------------------- sim2d --
TEST(Sim2D, SingleTaskMeetsDeadlines) {
  const TaskSet2D ts({make_task2d(2, 5, 5, 4, 4)});
  Sim2DConfig cfg;
  cfg.horizon = 1500;
  const auto r = simulate2d(ts, Device2D{10, 10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.jobs_released, 3u);
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_EQ(r.busy_cell_time, 3 * 200 * 16);
}

TEST(Sim2D, OversizedRectangleMissesImmediately) {
  const TaskSet2D ts({make_task2d(1, 5, 5, 11, 2)});
  const auto r = simulate2d(ts, Device2D{10, 10});
  EXPECT_FALSE(r.schedulable);
}

TEST(Sim2D, TwoRectanglesShareTheFabric) {
  // 6x10 and 4x10 tile the 10x10 device exactly.
  const TaskSet2D ts({make_task2d(3, 5, 5, 6, 10), make_task2d(3, 5, 5, 4, 10)});
  Sim2DConfig cfg;
  cfg.horizon = 500;
  const auto r = simulate2d(ts, Device2D{10, 10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.busy_cell_time, 300 * 100);
}

TEST(Sim2D, FragmentationBlocksAreaFeasibleJob) {
  // τ1 and τ2 occupy two 4x10 columns with a 2-wide gap between them is not
  // how bottom-left packs — instead craft: τ1 6x6 and τ2 6x6 cannot coexist
  // on 10x10 (by area 72 <= 100 but no two 6x6 disjoint positions… they do
  // fit: (0,0) and (... 6+6=12 > 10 horizontally, vertically also 12 > 10,
  // diagonal impossible for axis-aligned). So τ2 waits despite area fitting.
  const TaskSet2D ts({make_task2d(2, 5, 5, 6, 6), make_task2d(2, 5, 5, 6, 6)});
  Sim2DConfig cfg;
  cfg.horizon = 500;
  cfg.stop_on_first_miss = false;
  const auto r = simulate2d(ts, Device2D{10, 10}, cfg);
  EXPECT_TRUE(r.schedulable);  // serialized: 200+200 < 500 deadline ticks
  EXPECT_GT(r.fragmentation_rejections, 0u);
}

TEST(Sim2D, FkFBlocksBehindUnplaceableHead) {
  // Same-deadline queue: wide head τ1 (7x7) runs [0,500); τ2 (7x7) cannot
  // be placed concurrently, so under FkF it blocks τ3 (3x3) even though a
  // 3x3 position is free. τ3 is tight (C=5.5 of D=10): it must start before
  // t=450, so only NF's skip-ahead saves it; under FkF it waits until t=500
  // and misses. τ2 itself has slack (C=2, runs [500,700) either way).
  const TaskSet2D ts({
      make_task2d(5.0, 10, 10, 7, 7),
      make_task2d(2.0, 10, 10, 7, 7),
      make_task2d(5.5, 10, 10, 3, 3),
  });
  Sim2DConfig nf;
  nf.scheduler = Scheduler2D::kEdfNf;
  const auto rn = simulate2d(ts, Device2D{10, 10}, nf);
  EXPECT_TRUE(rn.schedulable);

  Sim2DConfig fkf;
  fkf.scheduler = Scheduler2D::kEdfFkF;
  const auto rf = simulate2d(ts, Device2D{10, 10}, fkf);
  EXPECT_FALSE(rf.schedulable);
  ASSERT_TRUE(rf.first_miss.has_value());
  EXPECT_EQ(rf.first_miss->task_index, 2u);
}

TEST(Sim2D, ReconfigCostDelaysAndCanMiss) {
  const TaskSet2D tight({make_task2d(4.5, 5, 5, 4, 4)});
  Sim2DConfig cfg;
  cfg.reconfig_cost_per_cell = 4;  // 64-tick stall vs 50 ticks of slack
  EXPECT_FALSE(simulate2d(tight, Device2D{10, 10}, cfg).schedulable);
  cfg.reconfig_cost_per_cell = 2;  // 32-tick stall fits the slack
  EXPECT_TRUE(simulate2d(tight, Device2D{10, 10}, cfg).schedulable);
}

TEST(Sim2D, RelaxationUpperBoundsPlacementOnDirectedCase) {
  // The 1D unrestricted-migration relaxation admits schedules 2D placement
  // cannot realize; on this fragmented scenario the relaxation stays
  // schedulable under a load where 2D bottom-left also survives only by
  // serialization. (Statistical comparison at scale: bench_2d.)
  const TaskSet2D ts({make_task2d(2, 5, 5, 6, 6), make_task2d(2, 5, 5, 6, 6)});
  const auto rel = ts.to_1d_relaxation();
  EXPECT_EQ(rel.total_area(), 72);
}

// ---------------------------------------------------------------- gen2d --
TEST(Gen2D, ProducesShapeAndDeterminism) {
  GenRequest2D req;
  req.profile.num_tasks = 8;
  req.profile.side_max = 5;
  req.seed = 7;
  const auto a = generate2d(req);
  const auto b = generate2d(req);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->size(), 8u);
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].wcet, (*b)[i].wcet);
    EXPECT_GE((*a)[i].width, 1);
    EXPECT_LE((*a)[i].width, 5);
    EXPECT_LE((*a)[i].height, 5);
    EXPECT_LE((*a)[i].wcet, (*a)[i].period);
  }
}

TEST(Gen2D, HitsCellUtilizationTarget) {
  GenRequest2D req;
  req.profile.num_tasks = 10;
  req.profile.side_max = 6;
  req.target_system_util_cells = 30.0;
  req.seed = 21;
  const auto ts = generate2d_with_retries(req);
  ASSERT_TRUE(ts.has_value());
  EXPECT_NEAR(ts->system_utilization_cells(), 30.0, req.target_tolerance);
}

}  // namespace
}  // namespace reconf::area2d
