// Tests for the NDJSON request/response codec of the admission service.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "svc/batch.hpp"
#include "svc/codec.hpp"
#include "task/io.hpp"
#include "task/task.hpp"

namespace reconf {
namespace {

// ------------------------------------------------------------ parsing ----

TEST(CodecParse, InlineTasksForm) {
  const auto req = svc::parse_request_line(
      R"({"id":"r1","device":100,"tasks":[)"
      R"({"c":126,"d":700,"t":700,"a":9,"name":"fir"},)"
      R"({"c":200,"d":500,"t":500,"a":7}]})");
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.device.width, 100);
  ASSERT_EQ(req.taskset.size(), 2u);
  EXPECT_EQ(req.taskset[0].wcet, 126);
  EXPECT_EQ(req.taskset[0].deadline, 700);
  EXPECT_EQ(req.taskset[0].period, 700);
  EXPECT_EQ(req.taskset[0].area, 9);
  EXPECT_EQ(req.taskset[0].name, "fir");
  EXPECT_EQ(req.taskset[1].name, "");
}

TEST(CodecParse, EmbeddedTasksetForm) {
  const auto req = svc::parse_request_line(
      R"({"id":7,"taskset":"taskset v1\ndevice 10\ntask t1 210 500 500 7\n"})");
  EXPECT_EQ(req.id, "7");  // integer ids are stringified
  EXPECT_EQ(req.device.width, 10);
  ASSERT_EQ(req.taskset.size(), 1u);
  EXPECT_EQ(req.taskset[0].name, "t1");
  EXPECT_EQ(req.taskset[0].wcet, 210);
}

TEST(CodecParse, RoundTripsThroughIoWriter) {
  // Any taskset the v1 writer emits must be acceptable as an embedded
  // "taskset" payload — the codec is layered on task/io.hpp.
  const TaskSet ts({make_task(2.10, 5, 5, 7, "a"), make_task(3.00, 10, 10, 6)});
  const Device dev{10};
  const std::string text = io::to_string(ts, dev);
  const std::string line =
      "{\"id\":\"rt\",\"taskset\":\"" + svc::json_escape(text) + "\"}";
  const auto req = svc::parse_request_line(line);
  EXPECT_EQ(req.device.width, dev.width);
  ASSERT_EQ(req.taskset.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(req.taskset[i].wcet, ts[i].wcet);
    EXPECT_EQ(req.taskset[i].deadline, ts[i].deadline);
    EXPECT_EQ(req.taskset[i].period, ts[i].period);
    EXPECT_EQ(req.taskset[i].area, ts[i].area);
    EXPECT_EQ(req.taskset[i].name, ts[i].name);
  }
}

TEST(CodecParse, TestsArraySelectsAnalyzers) {
  const auto req = svc::parse_request_line(
      R"({"id":"r9","device":100,"tasks":[{"c":1,"d":2,"t":2,"a":1}],)"
      R"("tests":["gn2","dp"]})");
  EXPECT_EQ(req.tests, (std::vector<std::string>{"gn2", "dp"}));
  // Absent => empty => the serving default lineup.
  const auto plain = svc::parse_request_line(
      R"({"device":100,"tasks":[{"c":1,"d":2,"t":2,"a":1}]})");
  EXPECT_TRUE(plain.tests.empty());
}

TEST(CodecParse, MissingIdDefaultsToEmpty) {
  const auto req = svc::parse_request_line(
      R"({"device":10,"tasks":[{"c":1,"d":2,"t":2,"a":1}]})");
  EXPECT_EQ(req.id, "");
  EXPECT_EQ(req.taskset.size(), 1u);
}

TEST(CodecParse, StringEscapes) {
  const auto req = svc::parse_request_line(
      R"({"id":"a\"b\\cA","device":10,"tasks":[]})");
  EXPECT_EQ(req.id, "a\"b\\cA");
  EXPECT_TRUE(req.taskset.empty());
}

void expect_rejected(const std::string& line, const std::string& fragment) {
  try {
    (void)svc::parse_request_line(line);
    FAIL() << "expected CodecError for: " << line;
  } catch (const svc::CodecError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(CodecParse, RejectsMalformedInput) {
  expect_rejected("", "unexpected end");
  expect_rejected("not json", "invalid literal");
  expect_rejected("[1,2,3]", "must be a JSON object");
  expect_rejected(R"({"id":"x"})", "requires either");
  expect_rejected(R"({"device":10})", "requires either");
  expect_rejected(R"({"device":10,"tasks":[]} trailing)", "trailing");
  expect_rejected(R"({"device":0,"tasks":[]})", "device must be positive");
  expect_rejected(R"({"device":-4,"tasks":[]})", "device must be positive");
  expect_rejected(R"({"device":10.5,"tasks":[]})", "must be an integer");
  expect_rejected(R"({"device":9999999999,"tasks":[]})", "out of range");
  expect_rejected(R"({"device":10,"tasks":{}})", "tasks must be an array");
  expect_rejected(R"({"device":10,"tasks":[[1,2,3,4]]})", "must be an object");
  expect_rejected(R"({"device":10,"tasks":[{"c":1,"d":2,"t":2}]})",
                  "requires keys");
  expect_rejected(R"({"device":10,"tasks":[{"c":-1,"d":2,"t":2,"a":1}]})",
                  "must be positive");
  expect_rejected(R"({"device":10,"tasks":[{"c":1.5,"d":2,"t":2,"a":1}]})",
                  "must be an integer");
  expect_rejected(
      R"({"device":10,"tasks":[{"c":1,"d":2,"perid":2,"a":1}]})",
      "unknown key");
  expect_rejected(R"({"device":10,"tasks":[],"taskset":"x"})", "excludes");
  expect_rejected(R"({"taskset":"garbage"})", "parse error");
  expect_rejected(R"({"taskset":42})", "must be a string");
  expect_rejected(R"({"frobnicate":1,"device":10,"tasks":[]})", "unknown key");
  expect_rejected(R"({"id":"x","device":10,"tasks":[)", "unexpected end");
  expect_rejected("{\"id\":\"\x01\",\"device\":10,\"tasks\":[]}",
                  "control character");
}

TEST(CodecParse, StatsRequestForm) {
  const svc::BatchRequest r =
      svc::parse_request_line(R"({"id":"s1","stats":true})");
  EXPECT_EQ(r.id, "s1");
  EXPECT_TRUE(r.stats);
  EXPECT_TRUE(r.tests.empty());
  // Analysis requests are not stats requests.
  EXPECT_FALSE(svc::parse_request_line(
                   R"({"device":10,"tasks":[{"c":1,"d":2,"t":2,"a":1}]})")
                   .stats);
}

TEST(CodecParse, StatsRequestRejectsFalseAndMixing) {
  expect_rejected(R"({"id":"s","stats":false})", "literal true");
  expect_rejected(R"({"id":"s","stats":1})", "literal true");
  expect_rejected(R"({"id":"s","stats":"yes"})", "literal true");
  expect_rejected(R"({"stats":true,"device":10,"tasks":[]})", "excludes");
  expect_rejected(R"({"stats":true,"taskset":"x"})", "excludes");
  expect_rejected(R"({"stats":true,"tests":["dp"]})", "excludes");
}

TEST(CodecParse, TestsArrayRejectsUnknownAndMalformed) {
  expect_rejected(
      R"({"device":10,"tasks":[],"tests":["gnX"]})", "unknown analyzer 'gnX'");
  // The error is actionable: it lists what IS registered.
  expect_rejected(
      R"({"device":10,"tasks":[],"tests":["gnX"]})", "registered analyzers:");
  expect_rejected(R"({"device":10,"tasks":[],"tests":[]})", "non-empty");
  expect_rejected(R"({"device":10,"tasks":[],"tests":"dp"})", "non-empty");
  expect_rejected(R"({"device":10,"tasks":[],"tests":[42]})",
                  "tests[0] must be a string");
}

TEST(CodecParse, ErrorsCarryRequestIdWhenRecoverable) {
  try {
    (void)svc::parse_request_line(
        R"({"id":"r7","device":100,"tasks":[{"c":0,"d":2,"t":2,"a":1}]})");
    FAIL() << "expected CodecError";
  } catch (const svc::CodecError& e) {
    EXPECT_EQ(e.id(), "r7");
  }
  // id declared after the failing field must still be recovered.
  try {
    (void)svc::parse_request_line(R"({"device":-1,"tasks":[],"id":"late"})");
    FAIL() << "expected CodecError";
  } catch (const svc::CodecError& e) {
    EXPECT_EQ(e.id(), "late");
  }
  // Invalid JSON: no id is recoverable.
  try {
    (void)svc::parse_request_line("{broken");
    FAIL() << "expected CodecError";
  } catch (const svc::CodecError& e) {
    EXPECT_EQ(e.id(), "");
  }
}

// --------------------------------------------------------- responses ----

TEST(CodecFormat, VerdictLineContainsAllFields) {
  svc::BatchVerdict v;
  v.id = "r\"1";
  v.accepted = true;
  v.accepted_by = "GN2";
  v.hash = 0xABCDEF0123456789ull;
  v.cache_hit = true;
  const TaskSet ts({make_task(2.10, 5, 5, 7)});
  const std::string line = svc::format_verdict_line(v, &ts);

  EXPECT_NE(line.find(R"("id":"r\"1")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("verdict":"schedulable")"), std::string::npos);
  EXPECT_NE(line.find(R"("accepted_by":"GN2")"), std::string::npos);
  EXPECT_NE(line.find(R"("cache":"hit")"), std::string::npos);
  EXPECT_NE(line.find(R"("hash":"abcdef0123456789")"), std::string::npos);
  EXPECT_NE(line.find(R"("n":1)"), std::string::npos);
}

TEST(CodecFormat, RejectionOmitsAcceptedBy) {
  svc::BatchVerdict v;
  v.id = "r2";
  const std::string line = svc::format_verdict_line(v, nullptr);
  EXPECT_NE(line.find(R"("verdict":"inconclusive")"), std::string::npos);
  EXPECT_EQ(line.find("accepted_by"), std::string::npos);
  EXPECT_NE(line.find(R"("cache":"miss")"), std::string::npos);
  EXPECT_EQ(line.find("\"n\":"), std::string::npos);
}

TEST(CodecFormat, SubReportsRenderedInExecutionOrder) {
  svc::BatchVerdict v;
  v.id = "r3";
  v.accepted = true;
  v.accepted_by = "gn2";
  v.sub = {{"dp", true, false, 1.5},
           {"gn2", true, true, 12.25},
           {"gn1", false, false, 0.0}};
  const std::string line = svc::format_verdict_line(v, nullptr);
  const auto dp = line.find(R"({"test":"dp","verdict":"inconclusive")");
  const auto gn2 = line.find(R"({"test":"gn2","verdict":"schedulable")");
  const auto gn1 = line.find(R"({"test":"gn1","skipped":true})");
  EXPECT_NE(dp, std::string::npos) << line;
  EXPECT_NE(gn2, std::string::npos) << line;
  EXPECT_NE(gn1, std::string::npos) << line;
  EXPECT_LT(dp, gn2);
  EXPECT_LT(gn2, gn1);
  EXPECT_NE(line.find(R"("micros":12.2)"), std::string::npos) << line;
}

TEST(CodecFormat, CacheHitOmitsSubReports) {
  svc::BatchVerdict v;
  v.id = "r4";
  v.cache_hit = true;
  const std::string line = svc::format_verdict_line(v, nullptr);
  EXPECT_EQ(line.find("\"sub\""), std::string::npos) << line;
}

TEST(CodecFormat, ErrorLine) {
  const std::string line = svc::format_error_line("x", "bad \"stuff\"\n");
  EXPECT_EQ(line, R"({"id":"x","error":"bad \"stuff\"\n"})");
}

TEST(CodecFormat, JsonEscapeControlCharacters) {
  EXPECT_EQ(svc::json_escape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(svc::json_escape("tab\there"), "tab\\there");
}

TEST(CodecFormat, ShedLine) {
  EXPECT_EQ(svc::format_shed_line("r9", "queue"),
            R"({"id":"r9","shed":"queue"})");
  EXPECT_EQ(svc::format_shed_line("", "deadline"),
            R"({"id":"","shed":"deadline"})");
}

// ----------------------------------------------------------- hardening ----

TEST(CodecHardening, DeeplyNestedJsonIsRejectedNotStackOverflowed) {
  // 1000 nested arrays: must fail with a depth error, not crash the parser.
  std::string line = R"({"id":"d","device":10,"tasks":)";
  for (int i = 0; i < 1000; ++i) line += '[';
  for (int i = 0; i < 1000; ++i) line += ']';
  line += '}';
  try {
    (void)svc::parse_request_line(line);
    FAIL() << "deep nesting accepted";
  } catch (const svc::CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("deep"), std::string::npos)
        << e.what();
  }
}

TEST(CodecHardening, NonFiniteNumbersAreRejected) {
  // 1e999 overflows double to +inf; a non-finite value must never leak into
  // tick arithmetic.
  EXPECT_THROW(
      (void)svc::parse_request_line(
          R"({"id":"n","device":10,"tasks":[{"c":1e999,"d":5,"t":5,"a":1}]})"),
      svc::CodecError);
}

TEST(CodecHardening, OversizedRequestLineIsRejected) {
  std::string line = R"({"id":"big","device":10,"tasks":[],"pad":")";
  line.append(svc::kMaxRequestLine, 'x');
  line += "\"}";
  try {
    (void)svc::parse_request_line(line);
    FAIL() << "oversized line accepted";
  } catch (const svc::CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

TEST(CodecHardening, TruncatedRequestsErrorPerKind) {
  // Truncations of each request form must throw (with the id when it was
  // recoverable), never return a half-parsed request.
  const std::string full =
      R"({"id":"r1","device":100,"tasks":[{"c":5,"d":9,"t":9,"a":1}]})";
  for (const std::size_t cut :
       {std::size_t{10}, std::size_t{25}, std::size_t{40}, full.size() - 2}) {
    EXPECT_THROW((void)svc::parse_request_line(full.substr(0, cut)),
                 svc::CodecError)
        << "cut at " << cut;
  }
  EXPECT_THROW((void)svc::parse_request_line(R"({"id":"s","taskset":"task)"),
               svc::CodecError);
  EXPECT_THROW((void)svc::parse_request_line(R"({"id":"t","stats":)"),
               svc::CodecError);
}

TEST(CodecHardening, ReadBoundedLineSplitsAndCaps) {
  std::istringstream in("short\n\nlast-no-newline");
  std::string line;
  EXPECT_EQ(svc::read_bounded_line(in, line), svc::LineStatus::kLine);
  EXPECT_EQ(line, "short");
  EXPECT_EQ(svc::read_bounded_line(in, line), svc::LineStatus::kLine);
  EXPECT_EQ(line, "");
  // The final unterminated line is still a line — a stream ending without a
  // trailing newline must not lose its last request.
  EXPECT_EQ(svc::read_bounded_line(in, line), svc::LineStatus::kLine);
  EXPECT_EQ(line, "last-no-newline");
  EXPECT_EQ(svc::read_bounded_line(in, line), svc::LineStatus::kEof);
}

TEST(CodecHardening, ReadBoundedLineDrainsOversizedWithBoundedMemory) {
  std::string text(100, 'a');
  text += '\n';
  text += "after";
  std::istringstream in(text);
  std::string line;
  // Cap of 10: the kept prefix is exactly the cap, the rest of the line is
  // drained, and the next read continues at the following line.
  EXPECT_EQ(svc::read_bounded_line(in, line, 10), svc::LineStatus::kOversized);
  EXPECT_EQ(line, std::string(10, 'a'));
  EXPECT_EQ(svc::read_bounded_line(in, line, 10), svc::LineStatus::kLine);
  EXPECT_EQ(line, "after");
  EXPECT_EQ(svc::read_bounded_line(in, line, 10), svc::LineStatus::kEof);
}

}  // namespace
}  // namespace reconf
