// Structural properties of the three bound tests beyond the paper's
// worked examples: permutation invariance, monotonicity in device width and
// execution times, and behaviour under task-set extension. Where a theorem's
// form makes a property false in general (GN2's λ-candidate pool changes
// when tasks are added), the test documents that instead of asserting it.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dp.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "task/io.hpp"

namespace reconf::analysis {
namespace {

std::optional<TaskSet> sample(std::uint64_t seed, int n, double us) {
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(n);
  req.target_system_util = us;
  req.seed = seed;
  return gen::generate_with_retries(req);
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, VerdictsArePermutationInvariant) {
  const auto ts = sample(GetParam(), 8, 25.0);
  if (!ts) GTEST_SKIP();
  const Device dev{100};

  std::vector<Task> shuffled(ts->begin(), ts->end());
  gen::Xoshiro256ss rng(GetParam());
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  const TaskSet perm{std::move(shuffled)};

  EXPECT_EQ(dp_test(*ts, dev).accepted(), dp_test(perm, dev).accepted());
  EXPECT_EQ(gn1_test(*ts, dev).accepted(), gn1_test(perm, dev).accepted());
  EXPECT_EQ(gn2_test(*ts, dev).accepted(), gn2_test(perm, dev).accepted());
}

TEST_P(PropertySweep, WiderDeviceNeverHurts) {
  const auto ts = sample(GetParam() ^ 0xA1, 8, 30.0);
  if (!ts) GTEST_SKIP();
  for (const Area w : {100, 120, 150, 200}) {
    const Device narrow{w};
    const Device wide{w + 25};
    if (dp_test(*ts, narrow).accepted()) {
      EXPECT_TRUE(dp_test(*ts, wide).accepted());
    }
    if (gn1_test(*ts, narrow).accepted()) {
      EXPECT_TRUE(gn1_test(*ts, wide).accepted());
    }
    if (gn2_test(*ts, narrow).accepted()) {
      EXPECT_TRUE(gn2_test(*ts, wide).accepted());
    }
  }
}

TEST_P(PropertySweep, InflatingWcetNeverFlipsRejectToAccept) {
  const auto ts = sample(GetParam() ^ 0xB2, 8, 30.0);
  if (!ts) GTEST_SKIP();
  const Device dev{100};

  // Inflate one task's WCET by 10% (respecting C <= min(D,T)).
  for (std::size_t victim = 0; victim < ts->size(); victim += 3) {
    std::vector<Ticks> extra(ts->size(), 0);
    const Task& t = (*ts)[victim];
    extra[victim] = std::min<Ticks>(t.wcet / 10 + 1,
                                    std::min(t.deadline, t.period) - t.wcet);
    if (extra[victim] <= 0) continue;
    const TaskSet inflated = ts->with_wcet_increased(extra);

    if (dp_test(inflated, dev).accepted()) {
      EXPECT_TRUE(dp_test(*ts, dev).accepted()) << io::to_string(*ts, dev);
    }
    if (gn1_test(inflated, dev).accepted()) {
      EXPECT_TRUE(gn1_test(*ts, dev).accepted()) << io::to_string(*ts, dev);
    }
    // GN2 is deliberately omitted: its λ-candidate pool {C_i/T_i} moves
    // with the WCETs, so acceptance is not formally monotone in C even
    // though violations are rare in practice.
  }
}

TEST_P(PropertySweep, RemovingATaskNeverFlipsAcceptToReject) {
  const auto ts = sample(GetParam() ^ 0xC3, 8, 25.0);
  if (!ts) GTEST_SKIP();
  const Device dev{100};

  const bool dp_all = dp_test(*ts, dev).accepted();
  const bool gn1_all = gn1_test(*ts, dev).accepted();
  if (!dp_all && !gn1_all) return;

  for (std::size_t drop = 0; drop < ts->size(); drop += 2) {
    std::vector<Task> rest;
    for (std::size_t i = 0; i < ts->size(); ++i) {
      if (i != drop) rest.push_back((*ts)[i]);
    }
    const TaskSet subset{std::move(rest)};
    if (dp_all) {
      EXPECT_TRUE(dp_test(subset, dev).accepted())
          << "dropped " << drop << "\n"
          << io::to_string(*ts, dev);
    }
    if (gn1_all) {
      EXPECT_TRUE(gn1_test(subset, dev).accepted())
          << "dropped " << drop << "\n"
          << io::to_string(*ts, dev);
    }
    // GN2 omitted for the same candidate-pool reason as above.
  }
}

TEST_P(PropertySweep, DiagnosticsCoverEveryTask) {
  const auto ts = sample(GetParam() ^ 0xD4, 6, 20.0);
  if (!ts) GTEST_SKIP();
  const Device dev{100};
  for (const auto& report :
       {dp_test(*ts, dev), gn1_test(*ts, dev), gn2_test(*ts, dev)}) {
    ASSERT_EQ(report.per_task.size(), ts->size()) << report.test_name;
    for (std::size_t k = 0; k < report.per_task.size(); ++k) {
      EXPECT_EQ(report.per_task[k].task_index, k);
    }
    if (report.accepted()) {
      for (const auto& d : report.per_task) EXPECT_TRUE(d.pass);
    } else if (report.note.empty()) {
      ASSERT_TRUE(report.first_failing_task.has_value());
      EXPECT_FALSE(report.per_task[*report.first_failing_task].pass);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(1, 25));

// ------------------------------------------------------------- directed --
TEST(Gn2Lambda, ReportsAWitnessCandidate) {
  // On acceptance GN2 must name the λ that satisfied a condition, and that
  // λ must be one of the discontinuity candidates (here: C_1/T_1 = 0.42 or
  // C_2/T_2 = 2/7).
  const TaskSet ts({make_task(2.10, 5, 5, 7), make_task(2.00, 7, 7, 7)});
  const auto r = gn2_test(ts, Device{10});
  ASSERT_TRUE(r.accepted());
  for (const auto& d : r.per_task) {
    EXPECT_TRUE(std::abs(d.lambda - 0.42) < 1e-9 ||
                std::abs(d.lambda - 2.0 / 7.0) < 1e-9)
        << d.lambda;
  }
}

TEST(Gn2Lambda, CandidatesBelowUkAreSkipped) {
  // τ2 heavy (u = 0.9): for k=2 only λ ≥ 0.9 candidates are admissible, so
  // a passing λ can never be τ1's 0.1.
  const TaskSet ts({make_task(1, 10, 10, 2), make_task(9, 10, 10, 2)});
  const auto r = gn2_test(ts, Device{100});
  ASSERT_TRUE(r.accepted());
  EXPECT_GE(r.per_task[1].lambda, 0.9 - 1e-9);
}

TEST(DpDiagnostics, LhsIsSystemUtilizationForEveryK) {
  const TaskSet ts({make_task(2, 8, 8, 10), make_task(3, 12, 12, 20)});
  const auto r = dp_test(ts, Device{100});
  for (const auto& d : r.per_task) {
    EXPECT_NEAR(d.lhs, ts.system_utilization(), 1e-12);
  }
}

}  // namespace
}  // namespace reconf::analysis
