#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "math/checked.hpp"
#include "math/gcd_lcm.hpp"
#include "math/intdiv.hpp"
#include "math/rational.hpp"
#include "math/stats.hpp"

namespace reconf::math {
namespace {

TEST(IntDiv, FloorDivMatchesTruncationForNonNegative) {
  EXPECT_EQ(floor_div(0, 3), 0);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(7, 3), 2);
  EXPECT_EQ(floor_div(1, 700), 0);
}

TEST(IntDiv, FloorDivRoundsNegativeNumeratorsDown) {
  // The N_i window count ⌊(D_k − D_i)/T_i⌋ hits these when D_k < D_i:
  // truncation would give 0, mathematical floor must give −1.
  EXPECT_EQ(floor_div(-1, 3), -1);
  EXPECT_EQ(floor_div(-3, 3), -1);
  EXPECT_EQ(floor_div(-4, 3), -2);
  EXPECT_EQ(floor_div(-699, 700), -1);
  EXPECT_EQ(floor_div(-700, 700), -1);
  EXPECT_EQ(floor_div(-701, 700), -2);
}

TEST(IntDiv, FloorDivIsConstexpr) {
  static_assert(floor_div(-1, 2) == -1);
  static_assert(floor_div(5, 2) == 2);
}

TEST(Checked, AddDetectsOverflow) {
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_FALSE(checked_add(std::numeric_limits<std::int64_t>::max(), 1));
  EXPECT_FALSE(checked_add(std::numeric_limits<std::int64_t>::min(), -1));
}

TEST(Checked, MulDetectsOverflow) {
  EXPECT_EQ(checked_mul(1'000'000, 1'000'000), 1'000'000'000'000);
  EXPECT_FALSE(checked_mul(std::numeric_limits<std::int64_t>::max(), 2));
}

TEST(GcdLcm, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
}

TEST(GcdLcm, LcmOverflowIsDetected) {
  const std::int64_t big = (std::int64_t{1} << 62) + 1;  // odd
  EXPECT_FALSE(lcm64(big, big - 2));                     // coprime-ish, huge
}

TEST(GcdLcm, LcmAllComputesHyperperiod) {
  const std::vector<std::int64_t> periods{700, 500};
  EXPECT_EQ(lcm_all(periods), 3500);
}

TEST(GcdLcm, LcmAllEmptyIsOne) {
  EXPECT_EQ(lcm_all(std::vector<std::int64_t>{}), 1);
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  const Rational n(3, -4);
  EXPECT_EQ(n.num(), -3);
  EXPECT_EQ(n.den(), 4);
  const Rational z(0, 17);
  EXPECT_EQ(z.num(), 0);
  EXPECT_EQ(z.den(), 1);
}

TEST(Rational, ArithmeticIsExact) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, ComparisonUsesCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  // Values whose double representations collide still compare exactly:
  const Rational x(10'000'000'000'000'001, 10'000'000'000'000'000);
  EXPECT_GT(x, Rational(1));
}

TEST(Rational, PaperUtilizationValuesAreExact) {
  // u1 = 1.26/7 = 126/700 = 9/50, u2 = 0.95/5 = 95/500 = 19/100 (Table 1).
  const Rational u1(126, 700);
  const Rational u2(95, 500);
  EXPECT_EQ(u1, Rational(9, 50));
  EXPECT_EQ(u2, Rational(19, 100));
  // U_S = 9*u1 + 6*u2 = 81/50 + 114/100 = 276/100 = 69/25.
  const Rational us = Rational(9) * u1 + Rational(6) * u2;
  EXPECT_EQ(us, Rational(69, 25));
}

TEST(Rational, UnaryMinusAndCompoundOps) {
  Rational r(3, 4);
  r += Rational(1, 4);
  EXPECT_EQ(r, Rational(1));
  r -= Rational(1, 2);
  EXPECT_EQ(r, Rational(1, 2));
  r *= Rational(4);
  EXPECT_EQ(r, Rational(2));
  r /= Rational(-8);
  EXPECT_EQ(r, Rational(-1, 4));
  EXPECT_EQ(-r, Rational(1, 4));
}

TEST(Rational, StreamsHumanReadably) {
  std::ostringstream os;
  os << Rational(3, 7) << " " << Rational(5);
  EXPECT_EQ(os.str(), "3/7 5");
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(rmin(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
  EXPECT_EQ(rmax(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(WilsonInterval, BracketsTheProportion) {
  const auto iv = wilson_interval(80, 100);
  EXPECT_LT(iv.lo, 0.8);
  EXPECT_GT(iv.hi, 0.8);
  EXPECT_GT(iv.lo, 0.70);
  EXPECT_LT(iv.hi, 0.88);
}

TEST(WilsonInterval, DegenerateCases) {
  const auto empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 1.0);
  const auto zero = wilson_interval(0, 50);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto one = wilson_interval(50, 50);
  EXPECT_EQ(one.hi, 1.0);
  EXPECT_LT(one.lo, 1.0);
}

}  // namespace
}  // namespace reconf::math
