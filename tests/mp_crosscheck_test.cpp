// Cross-validation of the specialization claim (paper Section 1):
// multiprocessor scheduling is the special case of 1D FPGA scheduling with
// unit task areas and A(H) = m. The FPGA tests evaluated on unit-area
// tasksets must therefore agree with the independently implemented
// multiprocessor ancestors:
//   DP  (unit areas, A(H)=m)  ⇔  GFB   — both reduce to U ≤ m − (m−1)u_max
//   GN1 (unit areas)          ⇔  BCL   — with the BCL window normalization
//   GN2 (unit areas)          ⇔  BAK2

#include <cstdint>

#include <gtest/gtest.h>

#include "analysis/dp.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "gen/generator.hpp"
#include "mp/mp_tests.hpp"
#include "task/io.hpp"

namespace reconf::mp {
namespace {

gen::GenProfile cpu_profile(int n) {
  gen::GenProfile p = gen::GenProfile::unconstrained(n);
  p.area_min = 1;
  p.area_max = 1;  // CPU tasks occupy exactly one processor
  return p;
}

struct CrossCase {
  std::uint64_t seed;
  int num_tasks;
  int processors;
  double target_ut;  // time utilization target == system utilization here
};

class CrossSweep : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossSweep, DpSpecializesToGfb) {
  const CrossCase& c = GetParam();
  gen::GenRequest req;
  req.profile = cpu_profile(c.num_tasks);
  req.target_system_util = c.target_ut;
  req.target_tolerance = 0.05;
  req.seed = c.seed;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  const bool fpga =
      analysis::dp_test(*ts, Device{c.processors}).accepted();
  const bool cpu = gfb_test(*ts, MpPlatform{c.processors}).accepted();
  EXPECT_EQ(fpga, cpu) << io::to_string(*ts, Device{c.processors});
}

TEST_P(CrossSweep, Gn1WithBclWindowSpecializesToBcl) {
  const CrossCase& c = GetParam();
  gen::GenRequest req;
  req.profile = cpu_profile(c.num_tasks);
  req.target_system_util = c.target_ut;
  req.target_tolerance = 0.05;
  req.seed = c.seed ^ 0x11;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  // With A_i = 1, Lemma 3's (A(H) − A_k + 1) = m and BCL's window
  // normalization makes β_i = W̄_i/D_k: exactly Bertogna's condition.
  analysis::Gn1Options opt;
  opt.normalization = analysis::Gn1Options::Normalization::kBclWindowDk;
  const bool fpga =
      analysis::gn1_test(*ts, Device{c.processors}, opt).accepted();
  const bool cpu = bcl_test(*ts, MpPlatform{c.processors}).accepted();
  EXPECT_EQ(fpga, cpu) << io::to_string(*ts, Device{c.processors});
}

TEST_P(CrossSweep, Gn2SpecializesToBak2) {
  const CrossCase& c = GetParam();
  gen::GenRequest req;
  req.profile = cpu_profile(c.num_tasks);
  req.target_system_util = c.target_ut;
  req.target_tolerance = 0.05;
  req.seed = c.seed ^ 0x22;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  // Implicit deadlines keep the (paper-vs-Baker) middle β branch dormant,
  // so the published GN2 and BAK2 coincide at A_i = 1.
  const bool fpga =
      analysis::gn2_test(*ts, Device{c.processors}).accepted();
  const bool cpu = bak2_test(*ts, MpPlatform{c.processors}).accepted();
  EXPECT_EQ(fpga, cpu) << io::to_string(*ts, Device{c.processors});
}

std::vector<CrossCase> cross_cases() {
  std::vector<CrossCase> cases;
  for (const int m : {2, 4, 8}) {
    for (const int n : {3, 6, 12}) {
      for (const double frac : {0.3, 0.6, 0.9}) {
        const double target = frac * m;
        // Unit-area tasks give U_S = U_T ≤ n; skip unreachable targets.
        if (target > 0.9 * n) continue;
        for (std::uint64_t s = 0; s < 5; ++s) {
          cases.push_back({0xC40C + s * 17 + static_cast<std::uint64_t>(m * n),
                           n, m, target});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomCpuTasksets, CrossSweep, ::testing::ValuesIn(cross_cases()),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      const CrossCase& c = info.param;
      std::string name = "m";
      name += std::to_string(c.processors);
      name += "_n";
      name += std::to_string(c.num_tasks);
      name += "_u";
      name += std::to_string(static_cast<int>(c.target_ut * 10));
      name += "_s";
      name += std::to_string(c.seed & 0xFFFF);
      return name;
    });

// ---------------------------------------------------------------- directed --
TEST(MpTests, GfbAcceptsClassicBound) {
  // m=2, u_max=0.5: bound is 2 − 1·0.5 = 1.5.
  const TaskSet ok({make_task(5, 10, 10, 1), make_task(5, 10, 10, 1),
                    make_task(4.9, 10, 10, 1)});  // U = 1.49
  EXPECT_TRUE(gfb_test(ok, MpPlatform{2}).accepted());
  const TaskSet bad({make_task(5, 10, 10, 1), make_task(5, 10, 10, 1),
                     make_task(5.2, 10, 10, 1)});  // U = 1.52, u_max=0.52
  EXPECT_FALSE(gfb_test(bad, MpPlatform{2}).accepted());
}

TEST(MpTests, GfbRequiresImplicitDeadlines) {
  const TaskSet ts({make_task(1, 5, 10, 1)});
  const auto r = gfb_test(ts, MpPlatform{2});
  EXPECT_FALSE(r.accepted());
  EXPECT_NE(r.note.find("implicit"), std::string::npos);
}

TEST(MpTests, BclAcceptsLightTaskset) {
  const TaskSet ts({make_task(1, 10, 10, 1), make_task(1, 12, 12, 1),
                    make_task(1, 14, 14, 1)});
  EXPECT_TRUE(bcl_test(ts, MpPlatform{2}).accepted());
}

TEST(MpTests, BclRejectsZeroSlackTask) {
  // D = C leaves no room for any interference (strict inequality fails).
  const TaskSet ts({make_task(5, 5, 5, 1), make_task(1, 10, 10, 1)});
  EXPECT_FALSE(bcl_test(ts, MpPlatform{2}).accepted());
}

TEST(MpTests, Bak2AcceptsLightTaskset) {
  const TaskSet ts({make_task(1, 10, 10, 1), make_task(1, 12, 12, 1)});
  EXPECT_TRUE(bak2_test(ts, MpPlatform{2}).accepted());
}

TEST(MpTests, Bak1ReducesToGfbForImplicitDeadlines) {
  // With D = T, BAK1's condition at the max-density task is exactly GFB's
  // U ≤ m − (m−1)·u_max; the verdicts must match on implicit-deadline sets.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    gen::GenRequest req;
    gen::GenProfile p = gen::GenProfile::unconstrained(6);
    p.area_min = p.area_max = 1;
    req.profile = p;
    req.target_system_util = 1.8;
    req.target_tolerance = 0.05;
    req.seed = seed;
    const auto ts = gen::generate_with_retries(req);
    if (!ts) continue;
    EXPECT_EQ(bak1_test(*ts, MpPlatform{2}).accepted(),
              gfb_test(*ts, MpPlatform{2}).accepted())
        << io::to_string(*ts, Device{2});
  }
}

TEST(MpTests, Bak1HandlesConstrainedDeadlines) {
  // GFB refuses D < T; BAK1 evaluates it. A light constrained set passes.
  const TaskSet light({make_task(1, 6, 12, 1), make_task(1, 8, 16, 1)});
  EXPECT_TRUE(bak1_test(light, MpPlatform{2}).accepted());
  EXPECT_FALSE(gfb_test(light, MpPlatform{2}).accepted());
  // A dense constrained set fails (λ_k near 1 leaves no interference room).
  const TaskSet dense({make_task(5, 5.5, 12, 1), make_task(5, 5.5, 12, 1),
                       make_task(5, 5.5, 12, 1)});
  EXPECT_FALSE(bak1_test(dense, MpPlatform{2}).accepted());
}

TEST(MpTests, InvalidPlatformRejects) {
  const TaskSet ts({make_task(1, 10, 10, 1)});
  EXPECT_FALSE(gfb_test(ts, MpPlatform{0}).accepted());
  EXPECT_FALSE(bcl_test(ts, MpPlatform{0}).accepted());
  EXPECT_FALSE(bak2_test(ts, MpPlatform{0}).accepted());
}

TEST(MpTests, EmptyTasksetIsSchedulable) {
  EXPECT_TRUE(gfb_test(TaskSet{}, MpPlatform{2}).accepted());
  EXPECT_TRUE(bcl_test(TaskSet{}, MpPlatform{2}).accepted());
  EXPECT_TRUE(bak2_test(TaskSet{}, MpPlatform{2}).accepted());
}

TEST(MpTests, AsUnitAreaForcesAllAreasToOne) {
  const TaskSet ts({make_task(1, 5, 5, 7), make_task(1, 6, 6, 3)});
  const TaskSet unit = as_unit_area(ts);
  EXPECT_EQ(unit.max_area(), 1);
  EXPECT_EQ(unit.min_area(), 1);
  EXPECT_EQ(unit[0].wcet, ts[0].wcet);
}

}  // namespace
}  // namespace reconf::mp
