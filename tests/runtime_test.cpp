// Conformance suite for the online reconfiguration runtime (src/rt/).
//
// Pins the runtime's contract from runtime.hpp:
//  * admission conformance — every gate decision over the committed corpus
//    plus >=1k generated scenarios agrees with an independently re-run
//    AnalysisEngine::decide on the exact candidate set (the runtime never
//    admits what the analysis rejects, and never rejects what it accepts);
//  * zero-cost soundness — with a free reconfiguration-cost model the
//    dispatch is exactly the simulator's EDF-NF, so admitted-only scenarios
//    meet every deadline;
//  * invariant conformance — the sim::InvariantChecker (area cap, EDF
//    order, expiry, Lemma 2 work conservation) passes on runtime dispatch
//    traces across families and prefetch policies;
//  * replay stability — the committed corpus scenarios under
//    tests/corpus/scenarios/ reproduce their recorded summary_json
//    byte-for-byte, per prefetch policy.
//
// Corpus file format: canonical scenario NDJSON (bit-exact under
// format_scenario) followed by "#expect <policy> <summary_json>" comment
// lines — '#' lines are skipped by parse_scenario, so each file is both a
// valid scenario and its own expectation record.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/engine.hpp"
#include "obs/metrics.hpp"
#include "rt/runtime.hpp"
#include "rt/scenario.hpp"

#ifndef RECONF_CORPUS_DIR
#error "RECONF_CORPUS_DIR must point at the committed tests/corpus directory"
#endif

namespace reconf::rt {
namespace {

constexpr ScenarioFamily kFamilies[] = {
    ScenarioFamily::kSteady, ScenarioFamily::kChurn,
    ScenarioFamily::kReconfHeavy};

Scenario make_scenario(ScenarioFamily family, std::uint64_t seed,
                       int arrivals = 10) {
  ScenarioGenOptions gen;
  gen.family = family;
  gen.seed = seed;
  gen.arrivals = arrivals;
  return generate_scenario(gen);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct CorpusScenario {
  std::filesystem::path path;
  Scenario scenario;
  std::string text;  ///< full file text, expect lines included
  std::vector<std::pair<PrefetchKind, std::string>> expect;
};

std::vector<CorpusScenario> load_corpus_scenarios() {
  std::vector<std::filesystem::path> files;
  const std::filesystem::path dir =
      std::filesystem::path(RECONF_CORPUS_DIR) / "scenarios";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".scenario") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<CorpusScenario> corpus;
  for (const auto& path : files) {
    CorpusScenario c;
    c.path = path;
    c.text = read_file(path);
    c.scenario = parse_scenario(c.text);
    std::istringstream lines(c.text);
    std::string line;
    while (std::getline(lines, line)) {
      constexpr std::string_view kTag = "#expect ";
      if (line.rfind(kTag, 0) != 0) continue;
      const std::size_t sp = line.find(' ', kTag.size());
      if (sp == std::string::npos) {
        ADD_FAILURE() << path << ": malformed " << line;
        continue;
      }
      const std::string policy = line.substr(kTag.size(), sp - kTag.size());
      const auto kind = prefetch_kind_from(policy);
      if (!kind.has_value()) {
        ADD_FAILURE() << path << ": unknown policy " << policy;
        continue;
      }
      c.expect.emplace_back(*kind, line.substr(sp + 1));
    }
    corpus.push_back(std::move(c));
  }
  return corpus;
}

// ------------------------------------------------------------ codec --

TEST(ScenarioCodec, FormatParseFormatIsBitExact) {
  for (const ScenarioFamily family : kFamilies) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Scenario s = make_scenario(family, seed);
      const std::string text = format_scenario(s);
      EXPECT_EQ(format_scenario(parse_scenario(text)), text)
          << to_string(family) << " seed " << seed;
    }
  }
}

TEST(ScenarioCodec, GenerationIsDeterministic) {
  for (const ScenarioFamily family : kFamilies) {
    EXPECT_EQ(format_scenario(make_scenario(family, 42)),
              format_scenario(make_scenario(family, 42)));
    EXPECT_NE(format_scenario(make_scenario(family, 42)),
              format_scenario(make_scenario(family, 43)));
  }
}

TEST(ScenarioCodec, SkipsCommentsAndBlankLines) {
  const Scenario s = parse_scenario(
      "# a comment\n"
      "{\"scenario\":\"c\",\"device\":100,\"horizon\":1000}\n"
      "\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"a\","
      "\"c\":100,\"d\":400,\"t\":400,\"a\":10}\n"
      "# trailing comment\n");
  EXPECT_EQ(s.name, "c");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].name, "a");
}

TEST(ScenarioCodec, RejectsMalformedInput) {
  const std::string header =
      "{\"scenario\":\"x\",\"device\":100,\"horizon\":1000}\n";
  const std::string arrive =
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"a\","
      "\"c\":100,\"d\":400,\"t\":400,\"a\":10}\n";
  // Unknown keys must not silently replay defaults.
  EXPECT_THROW(parse_scenario("{\"device\":100,\"horizon\":1000,"
                              "\"hrizon\":2}\n"),
               ScenarioError);
  EXPECT_THROW(
      parse_scenario(header + "{\"at\":0,\"event\":\"arrive\",\"name\":\"a\","
                              "\"c\":100,\"d\":400,\"perid\":400,\"a\":10}\n"),
      ScenarioError);
  // Missing header / required fields.
  EXPECT_THROW(parse_scenario(arrive), ScenarioError);
  EXPECT_THROW(parse_scenario("{\"device\":100}\n"), ScenarioError);
  // Events must be time-ordered, inside the horizon, with start >= at.
  EXPECT_THROW(
      parse_scenario(header +
                     "{\"at\":500,\"event\":\"depart\",\"name\":\"a\"}\n"
                     "{\"at\":400,\"event\":\"depart\",\"name\":\"b\"}\n"),
      ScenarioError);
  EXPECT_THROW(
      parse_scenario(header +
                     "{\"at\":1000,\"event\":\"depart\",\"name\":\"a\"}\n"),
      ScenarioError);
  EXPECT_THROW(
      parse_scenario(header + "{\"at\":10,\"event\":\"arrive\",\"name\":\"a\","
                              "\"c\":100,\"d\":400,\"t\":400,\"a\":10,"
                              "\"start\":5}\n"),
      ScenarioError);
}

// ------------------------------------------------- admission conformance --

// The acceptance bar: over the committed corpus plus >=1000 generated
// scenarios, every admission-gate decision matches an independent
// AnalysisEngine::decide on the exact candidate set the gate saw.
TEST(AdmissionConformance, GateAgreesWithDecideOverThousandScenarios) {
  const analysis::AnalysisEngine engine{analysis::fast_any_request()};
  std::uint64_t attempts = 0, admitted = 0, rejected = 0, scenarios = 0;

  const auto probe = [&](const TaskSet& candidate, Device device,
                         const svc::AdmissionDecision& decision) {
    ++attempts;
    decision.admitted ? ++admitted : ++rejected;
    const analysis::Decision independent = engine.decide(candidate, device);
    EXPECT_EQ(independent.accepted(), decision.admitted)
        << "gate and decide() disagree on a candidate set of "
        << candidate.size() << " tasks";
  };

  auto sweep = [&](const Scenario& s) {
    ++scenarios;
    RuntimeConfig config;
    config.record_trace = false;
    config.check_invariants = false;
    config.admission_probe = probe;
    const RuntimeResult r = run_scenario(s, config);
    EXPECT_EQ(r.admitted + r.rejected, static_cast<std::uint64_t>(std::count_if(
        r.admissions.begin(), r.admissions.end(),
        [](const AdmissionRecord&) { return true; })));
  };

  for (const CorpusScenario& c : load_corpus_scenarios()) sweep(c.scenario);
  for (const ScenarioFamily family : kFamilies) {
    for (std::uint64_t seed = 0; seed < 334; ++seed) {
      sweep(make_scenario(family, seed));
    }
  }

  EXPECT_GE(scenarios, 1000u);
  // The sweep must actually exercise both verdicts to mean anything.
  EXPECT_GT(attempts, 1000u);
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(AdmissionConformance, EveryAdmissionRecordNamesAnAcceptingAnalyzer) {
  const RuntimeResult r = run_scenario(make_scenario(ScenarioFamily::kChurn, 3));
  ASSERT_FALSE(r.admissions.empty());
  for (const AdmissionRecord& rec : r.admissions) {
    if (rec.admitted) {
      EXPECT_FALSE(rec.accepted_by.empty()) << rec.name;
    } else {
      EXPECT_TRUE(rec.accepted_by.empty()) << rec.name;
    }
  }
}

// ------------------------------------------------------ zero-cost misses --

// With a free cost model the runtime is exactly the simulator's EDF-NF, and
// the gate only ever releases jobs of analysis-accepted sets — so no job
// may miss. kSteady and kChurn generate rho = 0 scenarios.
TEST(ZeroCost, AdmittedOnlyScenariosMeetEveryDeadline) {
  for (const ScenarioFamily family :
       {ScenarioFamily::kSteady, ScenarioFamily::kChurn}) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      const Scenario s = make_scenario(family, seed);
      ASSERT_TRUE(s.reconf.free())
          << to_string(family) << " should generate zero-cost scenarios";
      RuntimeConfig config;
      config.record_trace = false;
      const RuntimeResult r = run_scenario(s, config);
      EXPECT_EQ(r.deadline_misses, 0u)
          << to_string(family) << " seed " << seed;
      EXPECT_TRUE(r.invariant_violations.empty())
          << to_string(family) << " seed " << seed;
    }
  }
}

// ------------------------------------------------------------ invariants --

TEST(Invariants, CheckerIsCleanAcrossFamiliesAndPolicies) {
  for (const ScenarioFamily family : kFamilies) {
    for (const PrefetchKind policy :
         {PrefetchKind::kNone, PrefetchKind::kStatic, PrefetchKind::kHybrid}) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        RuntimeConfig config;
        config.prefetch = policy;
        config.record_trace = false;
        const RuntimeResult r =
            run_scenario(make_scenario(family, seed), config);
        EXPECT_TRUE(r.invariant_violations.empty())
            << to_string(family) << "/" << to_string(policy) << " seed "
            << seed << ": " << r.invariant_violations.front();
      }
    }
  }
}

// --------------------------------------------------------- corpus replay --

TEST(CorpusReplay, CommittedScenariosReplayBitStable) {
  const std::vector<CorpusScenario> corpus = load_corpus_scenarios();
  ASSERT_GE(corpus.size(), 3u);
  for (const CorpusScenario& c : corpus) {
    ASSERT_FALSE(c.expect.empty()) << c.path;
    for (const auto& [policy, expected] : c.expect) {
      RuntimeConfig config;
      config.prefetch = policy;
      const RuntimeResult r = run_scenario(c.scenario, config);
      EXPECT_EQ(r.summary_json(), expected)
          << c.path << " under --policy=" << to_string(policy);
    }
  }
}

TEST(CorpusReplay, CommittedScenariosAreCanonical) {
  for (const CorpusScenario& c : load_corpus_scenarios()) {
    std::string stripped;
    std::istringstream lines(c.text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      stripped += line;
      stripped += '\n';
    }
    EXPECT_EQ(format_scenario(c.scenario), stripped) << c.path;
  }
}

TEST(CorpusReplay, SummaryIsInsensitiveToTraceAndInvariantRecording) {
  const Scenario s = make_scenario(ScenarioFamily::kReconfHeavy, 2);
  RuntimeConfig on;
  on.prefetch = PrefetchKind::kHybrid;
  RuntimeConfig off = on;
  off.record_trace = false;
  off.check_invariants = false;
  EXPECT_EQ(run_scenario(s, on).summary_json(),
            run_scenario(s, off).summary_json());
}

// ------------------------------------------------------ event semantics --

TEST(EventSemantics, ModeChangeGatesTheTransientUnion) {
  // The new mode's utilization (95 * 990/1000 = 94.05) plus the old
  // generation's cannot fit the device — the gate must reject, and the old
  // generation must keep releasing untouched.
  const Scenario s = parse_scenario(
      "{\"scenario\":\"mc-reject\",\"device\":100,\"horizon\":6000}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"fir\","
      "\"c\":300,\"d\":900,\"t\":900,\"a\":20}\n"
      "{\"at\":2000,\"event\":\"mode-change\",\"name\":\"fir\","
      "\"c\":990,\"d\":1000,\"t\":1000,\"a\":95}\n");
  const RuntimeResult r = run_scenario(s);
  EXPECT_EQ(r.admitted, 1u);
  EXPECT_EQ(r.rejected, 1u);
  ASSERT_EQ(r.admissions.size(), 2u);
  EXPECT_EQ(r.admissions[1].kind, EventKind::kModeChange);
  EXPECT_FALSE(r.admissions[1].admitted);
  // One generation only, releasing across the whole horizon: 0,900,...,5400.
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].released, 7u);
  EXPECT_EQ(r.deadline_misses, 0u);
}

TEST(EventSemantics, DeparturesDrainOutstandingJobs) {
  // Departure lands mid-job: the outstanding job must still complete, and
  // no release may happen after the departure.
  const Scenario s = parse_scenario(
      "{\"scenario\":\"drain\",\"device\":100,\"horizon\":4000}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"a\","
      "\"c\":400,\"d\":1000,\"t\":1000,\"a\":30}\n"
      "{\"at\":1100,\"event\":\"depart\",\"name\":\"a\"}\n");
  const RuntimeResult r = run_scenario(s);
  // Releases at 0 and 1000 only; the 1000-job is outstanding at the
  // departure and drains to completion.
  EXPECT_EQ(r.releases, 2u);
  EXPECT_EQ(r.completions, 2u);
  EXPECT_EQ(r.deadline_misses, 0u);
}

TEST(EventSemantics, NonLiveNamesAreCountedNoOps) {
  const Scenario s = parse_scenario(
      "{\"scenario\":\"ignored\",\"device\":100,\"horizon\":3000}\n"
      "{\"at\":0,\"event\":\"arrive\",\"name\":\"a\","
      "\"c\":100,\"d\":400,\"t\":400,\"a\":10}\n"
      "{\"at\":500,\"event\":\"depart\",\"name\":\"ghost\"}\n"
      "{\"at\":600,\"event\":\"mode-change\",\"name\":\"ghost\","
      "\"c\":100,\"d\":400,\"t\":400,\"a\":10}\n");
  const RuntimeResult r = run_scenario(s);
  EXPECT_EQ(r.ignored_events, 2u);
  EXPECT_EQ(r.admitted, 1u);
  EXPECT_EQ(r.deadline_misses, 0u);
}

// -------------------------------------------------------------- prefetch --

// The acceptance bar for the prefetch port: on the reconf-heavy family the
// hybrid policy hides at least half of the total load time that the
// no-prefetch baseline pays as stalls. Evaluated at 8 arrivals on the
// 100-column device — sigma-areas already exceed the fabric (every release
// risks a cold load) but some columns stay free to hide loads in; past
// that the fabric saturates and no policy can hide much (the port may not
// evict configurations that running jobs occupy).
TEST(Prefetch, HybridHidesAtLeastHalfTheStallOnReconfHeavy) {
  for (const std::uint64_t seed : {2u, 5u, 9u, 13u, 21u}) {
    const Scenario s =
        make_scenario(ScenarioFamily::kReconfHeavy, seed, /*arrivals=*/8);
    RuntimeConfig none;
    none.record_trace = false;
    RuntimeConfig hybrid = none;
    hybrid.prefetch = PrefetchKind::kHybrid;
    const RuntimeResult base = run_scenario(s, none);
    const RuntimeResult hyb = run_scenario(s, hybrid);
    EXPECT_EQ(base.hidden_ticks, 0);
    EXPECT_GT(base.stall_ticks, 0) << "seed " << seed;
    EXPECT_LT(hyb.stall_ticks, base.stall_ticks) << "seed " << seed;
    EXPECT_GE(hyb.stall_hiding_ratio(), 0.5)
        << "seed " << seed << ": hid " << hyb.hidden_ticks << " of "
        << (hyb.hidden_ticks + hyb.stall_ticks);
  }
}

TEST(Prefetch, ModeChangeSurvivesOnlyWithPrefetch) {
  // The committed mode-change-prefetch corpus scenario, semantically: the
  // new mode's load (240) exceeds its slack (D - C = 200), so the first
  // job of the new mode misses cold but survives when the admission-to-
  // activation gap hides the load.
  const auto corpus = load_corpus_scenarios();
  const auto it = std::find_if(
      corpus.begin(), corpus.end(), [](const CorpusScenario& c) {
        return c.scenario.name == "mode-change-prefetch";
      });
  ASSERT_NE(it, corpus.end());
  RuntimeConfig none;
  RuntimeConfig hybrid;
  hybrid.prefetch = PrefetchKind::kHybrid;
  const RuntimeResult cold = run_scenario(it->scenario, none);
  const RuntimeResult warm = run_scenario(it->scenario, hybrid);
  EXPECT_EQ(cold.deadline_misses, 1u);
  EXPECT_EQ(warm.deadline_misses, 0u);
  EXPECT_EQ(warm.prefetch_hits, 1u);
  EXPECT_TRUE(cold.invariant_violations.empty());
  EXPECT_TRUE(warm.invariant_violations.empty());
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, RuntimeCountersLandInTheSharedRegistry) {
  (void)run_scenario(make_scenario(ScenarioFamily::kReconfHeavy, 2));
  const std::string text =
      obs::MetricsRegistry::instance().prometheus_text();
  for (const char* metric :
       {"reconf_rt_admissions_total", "reconf_rt_releases_total",
        "reconf_rt_completions_total", "reconf_rt_config_loads_total",
        "reconf_rt_admission_latency_ns"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
}

}  // namespace
}  // namespace reconf::rt
