#include <gtest/gtest.h>

#include "partition/partitioned.hpp"
#include "task/fixtures.hpp"
#include "task/task.hpp"

namespace reconf::partition {
namespace {

TEST(Partitioned, SingleTaskGetsOnePartition) {
  const TaskSet ts({make_task(2, 5, 5, 4)});
  const auto r = partition_tasks(ts, Device{10});
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.partitions.size(), 1u);
  EXPECT_EQ(r.partitions[0].width, 4);
  EXPECT_EQ(r.total_width, 4);
  EXPECT_EQ(r.slack_width(Device{10}), 6);
}

TEST(Partitioned, LowDensityTasksShareAPartition) {
  // Two tasks with density 0.2 each fit in one serialized partition; the
  // partition is as wide as the wider member.
  const TaskSet ts({make_task(1, 5, 5, 4), make_task(1, 5, 5, 6)});
  const auto r = partition_tasks(ts, Device{10});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.partitions.size(), 1u);
  EXPECT_EQ(r.partitions[0].width, 6);
  EXPECT_NEAR(r.partitions[0].density, 0.4, 1e-12);
}

TEST(Partitioned, HighDensityTasksSplit) {
  const TaskSet ts({make_task(4, 5, 5, 4), make_task(4, 5, 5, 4)});
  const auto r = partition_tasks(ts, Device{10});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.partitions.size(), 2u);
  EXPECT_EQ(r.total_width, 8);
}

TEST(Partitioned, WidthBudgetLimitsPartitions) {
  // Three dense tasks of width 4 need 12 columns of partitions: infeasible
  // on a width-10 device even though U_S = 3*0.8*4 = 9.6 < 10.
  const TaskSet ts({make_task(4, 5, 5, 4), make_task(4, 5, 5, 4),
                    make_task(4, 5, 5, 4)});
  const auto r = partition_tasks(ts, Device{10});
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.note.empty());
}

TEST(Partitioned, GlobalWinsWhereSerializationWastesWidth) {
  // Four density-0.6 tasks of width 3: no two share a partition (densities
  // sum over 1), so partitioning needs 4x3 = 12 > 10 columns — infeasible.
  // Globally, three run concurrently (9 <= 10) and the staggered periods
  // let EDF-NF meet every deadline (integration_test simulates this set).
  const TaskSet ts({make_task(3, 5, 5, 3), make_task(3.6, 6, 6, 3),
                    make_task(4.8, 8, 8, 3), make_task(6, 10, 10, 3)});
  const Device dev{10};
  EXPECT_FALSE(partitioned_schedulable(ts, dev));
  EXPECT_TRUE(partitioned_schedulable(ts, Device{12}));
}

TEST(Partitioned, PartitionedWinsOnDenseNarrowSets) {
  // Paper Table 2: global bounds mostly fail, but partitioning places
  // τ1 (A=3, density 0.5625) and τ2 (A=5, density 0.889) in separate
  // partitions of total width 8 <= 10.
  const auto r =
      partition_tasks(fixtures::paper_table2(), fixtures::paper_device_small());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.partitions.size(), 2u);
  EXPECT_LE(r.total_width, 10);
}

TEST(Partitioned, DensityAboveOneIsInfeasible) {
  const TaskSet ts({make_task(5, 5, 5, 4), make_task(1, 5, 5, 8)});
  // τ1 has density 1.0 (own partition), τ2 density 0.2; widths 4+8 = 12.
  EXPECT_FALSE(partitioned_schedulable(ts, Device{10}));
  EXPECT_TRUE(partitioned_schedulable(ts, Device{12}));
}

TEST(Partitioned, HeuristicsProduceFeasibleAllocations) {
  const TaskSet ts({make_task(2, 8, 8, 3), make_task(3, 9, 9, 5),
                    make_task(1, 4, 4, 2), make_task(2, 12, 12, 7)});
  for (const auto h : {AllocHeuristic::kFirstFit, AllocHeuristic::kBestFit,
                       AllocHeuristic::kWorstFit}) {
    PartitionConfig cfg;
    cfg.heuristic = h;
    const auto r = partition_tasks(ts, Device{20}, cfg);
    EXPECT_TRUE(r.feasible) << to_string(h);
    // Every task appears exactly once.
    std::size_t members = 0;
    for (const auto& p : r.partitions) {
      members += p.task_indices.size();
      EXPECT_LE(p.density, 1.0 + 1e-9);
      EXPECT_GT(p.width, 0);
    }
    EXPECT_EQ(members, ts.size());
    EXPECT_LE(r.total_width, 20);
  }
}

TEST(Partitioned, OrderingModesWork) {
  const TaskSet ts({make_task(2, 8, 8, 3), make_task(3, 9, 9, 5),
                    make_task(1, 4, 4, 2)});
  for (const auto o : {AllocOrder::kByDensityDecreasing,
                       AllocOrder::kByAreaDecreasing, AllocOrder::kAsGiven}) {
    PartitionConfig cfg;
    cfg.order = o;
    EXPECT_TRUE(partition_tasks(ts, Device{15}, cfg).feasible);
  }
}

TEST(Partitioned, RejectsInfeasibleInput) {
  EXPECT_FALSE(partitioned_schedulable(TaskSet({make_task(6, 5, 5, 2)}),
                                       Device{10}));  // C > D
  EXPECT_FALSE(partitioned_schedulable(TaskSet({make_task(1, 5, 5, 12)}),
                                       Device{10}));  // A > A(H)
}

TEST(Partitioned, EmptyTasksetIsFeasible) {
  const auto r = partition_tasks(TaskSet{}, Device{10});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.partitions.empty());
}

TEST(Partitioned, ConstrainedDeadlinesUseDensity) {
  // D < T: density C/D = 0.5 each; two still share one partition.
  const TaskSet ts({make_task(1, 2, 8, 4), make_task(1, 2, 10, 4)});
  const auto r = partition_tasks(ts, Device{10});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.partitions.size(), 1u);
}

}  // namespace
}  // namespace reconf::partition
