// Tests for the Analyzer registry and the AnalysisEngine: registration
// rules, capability filtering, deterministic cheapest-first ordering,
// configuration fingerprints — and the parity suite proving the engine (and
// the composite_test shim layered on it) bit-identical to the legacy
// hard-wired DP/GN1/GN2 composite across generated tasksets under every
// option combination.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "analysis/dp.hpp"
#include "analysis/engine.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "analysis/hash.hpp"
#include "analysis/registry.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "mp/mp_tests.hpp"
#include "task/fixtures.hpp"
#include "task/task.hpp"

namespace reconf {
namespace {

using analysis::AnalysisEngine;
using analysis::AnalysisRequest;
using analysis::Analyzer;
using analysis::AnalyzerConfig;
using analysis::AnalyzerRegistry;
using analysis::Capabilities;
using analysis::CompositeOptions;
using analysis::CompositeReport;
using analysis::CostClass;
using analysis::Scheduler;
using analysis::TestReport;
using analysis::Verdict;

TaskSet table3_taskset() {
  return TaskSet(
      {make_task(2.10, 5, 5, 7, "t1"), make_task(2.00, 7, 7, 7, "t2")});
}

/// A trivially-light taskset every test accepts — DP (the cheapest
/// analyzer) accepts it, which is what the early-exit tests need.
TaskSet feather_taskset() {
  return TaskSet({make_task(0.10, 10, 10, 1), make_task(0.10, 10, 10, 1)});
}

/// Minimal analyzer for registry tests.
class StubAnalyzer final : public Analyzer {
 public:
  StubAnalyzer(std::string id, CostClass cost = CostClass::kLinear)
      : id_(std::move(id)), cost_(cost) {}

  std::string_view id() const noexcept override { return id_; }
  std::string_view description() const noexcept override { return "stub"; }
  Capabilities capabilities() const noexcept override {
    Capabilities caps;
    caps.sound_edf_nf = true;
    caps.cost = cost_;
    return caps;
  }
  TestReport run(const TaskSet&, Device,
                 const AnalyzerConfig&) const override {
    TestReport r;
    r.test_name = id_;
    return r;
  }

 private:
  std::string id_;
  CostClass cost_;
};

// ----------------------------------------------------------- registry ----

TEST(AnalyzerRegistry, RejectsDuplicateIds) {
  AnalyzerRegistry registry;
  registry.add(std::make_unique<StubAnalyzer>("x"));
  EXPECT_THROW(registry.add(std::make_unique<StubAnalyzer>("x")),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(AnalyzerRegistry, RejectsEmptyIdAndNull) {
  AnalyzerRegistry registry;
  EXPECT_THROW(registry.add(std::make_unique<StubAnalyzer>("")),
               std::invalid_argument);
  EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
}

TEST(AnalyzerRegistry, FindAndEnumerate) {
  AnalyzerRegistry registry;
  registry.add(std::make_unique<StubAnalyzer>("zeta"));
  registry.add(std::make_unique<StubAnalyzer>("alpha"));
  ASSERT_NE(registry.find("zeta"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
  // Deterministic: sorted by id, not registration order.
  EXPECT_EQ(registry.ids(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(registry.id_list(), "alpha, zeta");
}

TEST(AnalyzerRegistry, InstanceHasAllBuiltins) {
  const auto ids = AnalyzerRegistry::instance().ids();
  const std::vector<std::string> expected = {
      "dp", "gn1", "gn2", "mp-bak1", "mp-bak2", "mp-bcl", "mp-gfb",
      "partition"};
  for (const std::string& id : expected) {
    EXPECT_NE(AnalyzerRegistry::instance().find(id), nullptr) << id;
  }
  // Sorted enumeration (builtins may be joined by user analyzers later, so
  // only require the builtin subset in order).
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(AnalyzerRegistry, BuiltinCapabilityMetadata) {
  const auto& registry = AnalyzerRegistry::instance();
  const auto caps = [&](const char* id) {
    const Analyzer* a = registry.find(id);
    EXPECT_NE(a, nullptr) << id;
    return a->capabilities();
  };
  // The paper's soundness caveat, as metadata.
  EXPECT_TRUE(caps("dp").sound_edf_fkf);
  EXPECT_TRUE(caps("dp").sound_edf_nf);
  EXPECT_FALSE(caps("gn1").sound_edf_fkf);
  EXPECT_TRUE(caps("gn1").sound_edf_nf);
  EXPECT_TRUE(caps("gn2").sound_edf_fkf);
  // Partitioned EDF is its own scheduler: not sound for either global EDF.
  EXPECT_FALSE(caps("partition").sound_edf_nf);
  EXPECT_FALSE(caps("partition").sound_edf_fkf);
  EXPECT_TRUE(caps("partition").sound_partitioned);
  // Cost classes drive cheapest-first ordering.
  EXPECT_EQ(caps("dp").cost, CostClass::kLinear);
  EXPECT_EQ(caps("gn1").cost, CostClass::kQuadratic);
  EXPECT_EQ(caps("gn2").cost, CostClass::kCubic);
}

// ----------------------------------------------------- engine resolve ----

TEST(AnalysisEngine, UnknownIdThrowsActionableError) {
  AnalysisRequest request;
  request.tests = {"dp", "gnX"};
  try {
    const AnalysisEngine engine(std::move(request));
    FAIL() << "expected UnknownAnalyzerError";
  } catch (const analysis::UnknownAnalyzerError& e) {
    EXPECT_EQ(e.id(), "gnX");
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown analyzer 'gnX'"), std::string::npos) << what;
    EXPECT_NE(what.find("registered analyzers:"), std::string::npos) << what;
    EXPECT_NE(what.find("dp"), std::string::npos) << what;
  }
}

TEST(AnalysisEngine, CheapestFirstDeterministicOrdering) {
  AnalysisRequest request;
  request.tests = {"gn2", "gn1", "dp"};  // listed most expensive first
  const AnalysisEngine engine(std::move(request));
  EXPECT_EQ(engine.execution_order(),
            (std::vector<std::string>{"dp", "gn1", "gn2"}));

  // Quadratic tie broken by id — deterministic for any listing order.
  AnalysisRequest ties;
  ties.tests = {"partition", "mp-bcl", "gn1", "mp-bak1"};
  const AnalysisEngine tie_engine(std::move(ties));
  EXPECT_EQ(tie_engine.execution_order(),
            (std::vector<std::string>{"gn1", "mp-bak1", "mp-bcl",
                                      "partition"}));
}

TEST(AnalysisEngine, DuplicateIdsRunOnce) {
  AnalysisRequest request;
  request.tests = {"gn2", "dp", "gn2", "dp"};
  const AnalysisEngine engine(std::move(request));
  EXPECT_EQ(engine.execution_order(),
            (std::vector<std::string>{"dp", "gn2"}));
}

TEST(AnalysisEngine, CapabilityFilterDerivesForFkf) {
  AnalysisRequest request;  // default trio
  request.scheduler = Scheduler::kEdfFkF;
  const AnalysisEngine engine(std::move(request));
  // GN1 is not FkF-sound: dropped by metadata, not by a hand-wired flag.
  EXPECT_EQ(engine.execution_order(),
            (std::vector<std::string>{"dp", "gn2"}));

  AnalysisRequest part;
  part.tests = {"dp", "gn1", "gn2", "partition"};
  part.scheduler = Scheduler::kPartitionedEdf;
  const AnalysisEngine part_engine(std::move(part));
  EXPECT_EQ(part_engine.execution_order(),
            (std::vector<std::string>{"partition"}));
}

TEST(AnalysisEngine, EmptySelectionAnswersInconclusive) {
  AnalysisRequest request;
  request.tests.clear();
  const AnalysisEngine engine(std::move(request));
  EXPECT_TRUE(engine.empty());
  const auto report = engine.run(table3_taskset(), Device{10});
  EXPECT_EQ(report.verdict, Verdict::kInconclusive);
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_TRUE(report.accepted_by().empty());
}

// --------------------------------------------------------- engine run ----

TEST(AnalysisEngine, EarlyExitSkipsTailWithoutChangingTheVerdict) {
  AnalysisRequest eager;
  eager.early_exit = true;
  const AnalysisEngine eager_engine(eager);
  const AnalysisEngine full_engine(AnalysisRequest{});

  const TaskSet ts = feather_taskset();
  const auto fast = eager_engine.run(ts, Device{100});
  const auto slow = full_engine.run(ts, Device{100});

  ASSERT_TRUE(fast.accepted());
  EXPECT_EQ(fast.accepted_by(), "dp");  // cheapest analyzer decides
  ASSERT_EQ(fast.outcomes.size(), 3u);
  EXPECT_TRUE(fast.outcomes[0].ran);
  EXPECT_FALSE(fast.outcomes[1].ran) << "gn1 must be skipped after accept";
  EXPECT_FALSE(fast.outcomes[2].ran) << "gn2 must be skipped after accept";

  EXPECT_EQ(fast.verdict, slow.verdict);
  EXPECT_EQ(fast.accepted_by(), slow.accepted_by());
}

TEST(AnalysisEngine, ReportLookupHelpers) {
  const AnalysisEngine engine(AnalysisRequest{});
  const auto report = engine.run(table3_taskset(), Device{10});
  ASSERT_NE(report.outcome("gn2"), nullptr);
  ASSERT_NE(report.report_for("gn2"), nullptr);
  EXPECT_EQ(report.report_for("gn2")->test_name, "GN2");
  EXPECT_EQ(report.outcome("partition"), nullptr);
  EXPECT_EQ(report.report_for("partition"), nullptr);
}

TEST(AnalysisEngine, StatsAccumulateAcrossRuns) {
  AnalysisRequest request;
  request.early_exit = true;
  const AnalysisEngine engine(std::move(request));
  const TaskSet ts = feather_taskset();
  for (int i = 0; i < 5; ++i) {
    (void)engine.run(ts, Device{100});
  }
  const auto stats = engine.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].first, "dp");
  EXPECT_EQ(stats[0].second.runs, 5u);
  EXPECT_EQ(stats[0].second.accepts, 5u);
  // Early exit: the tail never ran.
  EXPECT_EQ(stats[1].second.runs, 0u);
  EXPECT_EQ(stats[2].second.runs, 0u);
}

TEST(AnalysisEngine, MpAnalyzersGuardUnitArea) {
  AnalysisRequest request;
  request.tests = {"mp-gfb", "mp-bak2", "mp-bcl", "mp-bak1"};
  const AnalysisEngine engine(std::move(request));

  // Non-unit areas: refused with a note, never an unsound acceptance.
  const auto refused = engine.run(table3_taskset(), Device{10});
  EXPECT_FALSE(refused.accepted());
  for (const auto& o : refused.outcomes) {
    ASSERT_TRUE(o.ran);
    EXPECT_EQ(o.report.verdict, Verdict::kInconclusive);
    EXPECT_NE(o.report.note.find("unit-area"), std::string::npos);
  }

  // Unit-area tasks on m columns == the mp test on m processors.
  const TaskSet unit({make_task(1.00, 5, 5, 1), make_task(2.00, 10, 10, 1),
                      make_task(1.50, 8, 8, 1)});
  const auto report = engine.run(unit, Device{3});
  const auto* gfb = report.report_for("mp-gfb");
  ASSERT_NE(gfb, nullptr);
  const auto direct = mp::gfb_test(unit, mp::MpPlatform{3});
  EXPECT_EQ(gfb->verdict, direct.verdict);
  EXPECT_EQ(gfb->test_name, direct.test_name);
}

// -------------------------------------------------------- fingerprints ----

TEST(EngineFingerprint, CoversAnalyzerSetAndOptions) {
  const auto fp = [](AnalysisRequest r) {
    return AnalysisEngine(std::move(r)).fingerprint();
  };

  AnalysisRequest trio;                     // dp,gn1,gn2
  AnalysisRequest dp_only;
  dp_only.tests = {"dp"};
  EXPECT_NE(fp(trio), fp(dp_only))
      << "a {dp}-only verdict must never be served to a trio caller";

  // Selection is a set: listing order does not matter.
  AnalysisRequest shuffled;
  shuffled.tests = {"gn2", "dp", "gn1"};
  EXPECT_EQ(fp(trio), fp(shuffled));

  // Per-analyzer options are covered...
  AnalysisRequest tweaked = trio;
  tweaked.config.gn2.non_strict_condition2 = true;
  EXPECT_NE(fp(trio), fp(tweaked));

  // ...but only for selected analyzers: a dp knob cannot churn a gn2-only
  // fingerprint.
  AnalysisRequest gn2_only;
  gn2_only.tests = {"gn2"};
  AnalysisRequest gn2_only_dp_knob = gn2_only;
  gn2_only_dp_knob.config.dp.alpha = analysis::DpOptions::Alpha::kOriginalReal;
  EXPECT_EQ(fp(gn2_only), fp(gn2_only_dp_knob));

  // Diagnostics knobs never change the fingerprint (verdicts identical).
  AnalysisRequest eager = trio;
  eager.early_exit = true;
  eager.measure = false;
  eager.diagnostics = false;  // SoA fast path: same verdicts by contract
  EXPECT_EQ(fp(trio), fp(eager));
}

TEST(EngineFingerprint, SchedulerFilterFoldedViaSelection) {
  const auto fp = [](AnalysisRequest r) {
    return AnalysisEngine(std::move(r)).fingerprint();
  };
  AnalysisRequest nf;  // trio, no filter
  AnalysisRequest fkf = nf;
  fkf.scheduler = Scheduler::kEdfFkF;
  EXPECT_NE(fp(nf), fp(fkf)) << "GN1 dropped => different effective lineup";

  // Equivalent post-filter lineups share a fingerprint (and may safely
  // share cache lines — the verdicts are identical).
  AnalysisRequest dp_gn2;
  dp_gn2.tests = {"dp", "gn2"};
  EXPECT_EQ(fp(fkf), fp(dp_gn2));
}

TEST(EngineFingerprint, LegacyOptionsFingerprintMatchesEngine) {
  const CompositeOptions options;
  for (const bool for_fkf : {false, true}) {
    const AnalysisEngine engine(
        analysis::request_from_composite(options, for_fkf));
    EXPECT_EQ(analysis::options_fingerprint(options, for_fkf),
              engine.fingerprint());
  }
}

// ------------------------------------------------------- parity suite ----

/// The pre-engine composite_test, reimplemented verbatim from PR 1 — the
/// reference the engine (and the shim now layered on it) must match
/// bit-for-bit.
CompositeReport legacy_composite(const TaskSet& ts, Device device,
                                 const CompositeOptions& options,
                                 bool for_fkf) {
  CompositeReport out;
  if (options.use_dp) {
    out.sub_reports.push_back(analysis::dp_test(ts, device, options.dp));
  }
  if (options.use_gn1 && !for_fkf) {
    out.sub_reports.push_back(analysis::gn1_test(ts, device, options.gn1));
  }
  if (options.use_gn2) {
    out.sub_reports.push_back(analysis::gn2_test(ts, device, options.gn2));
  }
  for (const TestReport& r : out.sub_reports) {
    if (r.accepted()) {
      out.verdict = Verdict::kSchedulable;
      break;
    }
  }
  return out;
}

/// Bit-identity of two TestReports, NaN-aware for the diagnostics doubles.
void expect_reports_identical(const TestReport& a, const TestReport& b) {
  EXPECT_EQ(a.test_name, b.test_name);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.first_failing_task, b.first_failing_task);
  EXPECT_EQ(a.note, b.note);
  ASSERT_EQ(a.per_task.size(), b.per_task.size());
  const auto same_double = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  for (std::size_t i = 0; i < a.per_task.size(); ++i) {
    EXPECT_EQ(a.per_task[i].task_index, b.per_task[i].task_index);
    EXPECT_EQ(a.per_task[i].pass, b.per_task[i].pass);
    EXPECT_TRUE(same_double(a.per_task[i].lhs, b.per_task[i].lhs));
    EXPECT_TRUE(same_double(a.per_task[i].rhs, b.per_task[i].rhs));
    EXPECT_TRUE(same_double(a.per_task[i].lambda, b.per_task[i].lambda));
    EXPECT_EQ(a.per_task[i].condition, b.per_task[i].condition);
  }
}

/// ≥1k generated tasksets (mixed sizes and loads, implicit and constrained
/// deadlines) × every use-flag combination × for_fkf × option variants:
/// engine verdicts, shim verdicts and the legacy composite must agree
/// bit-for-bit, and early-exit must never change a verdict.
TEST(EngineParity, BitIdenticalToLegacyCompositeAcrossGeneratedTasksets) {
  const Device dev{100};

  std::vector<TaskSet> tasksets;
  tasksets.reserve(150);
  for (std::uint64_t i = 0; tasksets.size() < 150 && i < 600; ++i) {
    gen::GenRequest req;
    req.profile = gen::GenProfile::unconstrained(2 + static_cast<int>(i % 9));
    req.target_system_util = 5.0 + 90.0 * static_cast<double>(i % 17) / 16.0;
    req.seed = gen::derive_seed(0x9A617E57, i);
    auto ts = gen::generate(req);
    if (!ts) continue;
    tasksets.push_back(*ts);
    // Every third set also joins with constrained deadlines (D < T) to
    // exercise DP's refusal path and the D-dependent terms of GN1/GN2.
    if (i % 3 == 0) {
      std::vector<Task> tightened;
      for (const Task& t : *ts) {
        Task copy = t;
        copy.deadline = std::max<Ticks>(t.wcet, (t.deadline * 4) / 5);
        tightened.push_back(copy);
      }
      tasksets.emplace_back(std::move(tightened));
    }
  }
  ASSERT_GE(tasksets.size(), 150u);

  // All 8 use-flag combinations under default knobs, plus the non-default
  // per-test knob variants with the full trio enabled.
  std::vector<CompositeOptions> configs;
  for (int mask = 0; mask < 8; ++mask) {
    CompositeOptions o;
    o.use_dp = (mask & 1) != 0;
    o.use_gn1 = (mask & 2) != 0;
    o.use_gn2 = (mask & 4) != 0;
    configs.push_back(o);
  }
  {
    CompositeOptions o;
    o.dp.alpha = analysis::DpOptions::Alpha::kOriginalReal;
    o.dp.require_implicit_deadlines = false;
    configs.push_back(o);
    CompositeOptions g1;
    g1.gn1.normalization = analysis::Gn1Options::Normalization::kBclWindowDk;
    g1.gn1.rhs = analysis::Gn1Options::Rhs::kTheoremLiteral;
    configs.push_back(g1);
    CompositeOptions g2;
    g2.gn2.non_strict_condition2 = true;
    g2.gn2.bak2_middle_branch = true;
    configs.push_back(g2);
  }

  std::uint64_t compared = 0;
  for (const CompositeOptions& options : configs) {
    for (const bool for_fkf : {false, true}) {
      const auto request = analysis::request_from_composite(options, for_fkf);
      const AnalysisEngine engine(request);
      AnalysisRequest eager = request;
      eager.early_exit = true;
      const AnalysisEngine eager_engine(std::move(eager));

      for (const TaskSet& ts : tasksets) {
        const CompositeReport expected =
            legacy_composite(ts, dev, options, for_fkf);

        // Engine path.
        const auto report = engine.run(ts, dev);
        ASSERT_EQ(report.verdict, expected.verdict);
        std::size_t ran = 0;
        for (const auto& o : report.outcomes) {
          ASSERT_TRUE(o.ran);  // no early exit configured
          ASSERT_LT(ran, expected.sub_reports.size());
          expect_reports_identical(o.report, expected.sub_reports[ran]);
          ++ran;
        }
        ASSERT_EQ(ran, expected.sub_reports.size());

        // Shim path.
        const CompositeReport shim =
            analysis::composite_test(ts, dev, options, for_fkf);
        ASSERT_EQ(shim.verdict, expected.verdict);
        ASSERT_EQ(shim.accepted_by(), expected.accepted_by());
        ASSERT_EQ(shim.sub_reports.size(), expected.sub_reports.size());
        for (std::size_t i = 0; i < shim.sub_reports.size(); ++i) {
          expect_reports_identical(shim.sub_reports[i],
                                   expected.sub_reports[i]);
        }

        // Early exit: same verdict and accepting analyzer, by construction.
        const auto fast = eager_engine.run(ts, dev);
        ASSERT_EQ(fast.verdict, expected.verdict);
        ASSERT_EQ(fast.accepted_by(), report.accepted_by());

        ++compared;
      }
    }
  }
  // 22 configurations × ≥150 tasksets ≥ 3300 — comfortably past the 1k bar.
  EXPECT_GE(compared, 1000u);
}

TEST(EngineParity, PaperTablesAcceptedByMatchesLegacyNames) {
  // The shim keeps the legacy test_name-based accepted_by ("DP"/"GN1"/
  // "GN2") while the engine reports registry ids — both must point at the
  // same analyzer for the paper's Table 3.
  const TaskSet ts = table3_taskset();
  const Device dev{10};
  const auto shim = analysis::composite_test(ts, dev);
  const AnalysisEngine engine{AnalysisRequest{}};
  const auto report = engine.run(ts, dev);
  EXPECT_EQ(shim.accepted_by(), "GN2");
  EXPECT_EQ(report.accepted_by(), "gn2");
}

}  // namespace
}  // namespace reconf
