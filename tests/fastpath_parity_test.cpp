// Parity suite for the SoA fast-path kernels (analysis/detail/kernels.hpp):
// across ≥1k randomized generated tasksets — implicit, constrained and
// arbitrary deadlines, every per-test option variant — the fast kernels
// must agree with the reference DoublePolicy evaluators on verdict,
// first_failing_task and (for GN2) the chosen λ candidate and condition,
// and the engine's decide()/fast-mode run() must agree with diagnostics
// run(). The reference evaluators stay the correctness oracle; this suite
// is what licenses serving verdicts from the kernels.

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/detail/kernels.hpp"
#include "analysis/detail/scratch.hpp"
#include "analysis/dp.hpp"
#include "analysis/engine.hpp"
#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "gen/generator.hpp"
#include "gen/rng.hpp"
#include "task/fixtures.hpp"
#include "task/task.hpp"

namespace reconf {
namespace {

using analysis::AnalysisEngine;
using analysis::AnalysisRequest;
using analysis::TestReport;
using analysis::Verdict;
using analysis::FastVerdict;
using analysis::detail::AnalysisScratch;
using analysis::detail::Gn2Choice;

/// The deadline models the kernels must cover, as generator deadline-ratio
/// ranges: implicit (D = T), constrained (D ≤ T), arbitrary (D can exceed
/// T — exercises GN2's pool densities and the β middle branch).
struct DeadlineClass {
  const char* name;
  double ratio_min;
  double ratio_max;
};
constexpr DeadlineClass kDeadlineClasses[] = {
    {"implicit", 1.0, 1.0},
    {"constrained", 0.6, 1.0},
    {"arbitrary", 0.7, 1.8},
};

std::vector<TaskSet> generate_corpus(std::uint64_t salt, std::size_t want) {
  std::vector<TaskSet> out;
  out.reserve(want);
  for (std::uint64_t i = 0; out.size() < want && i < 8 * want; ++i) {
    const DeadlineClass& dc = kDeadlineClasses[i % 3];
    gen::GenRequest req;
    // Mostly small sets (cheap reference evaluation), with periodic large
    // ones so the sweep's event machinery is exercised at serving sizes.
    const int n = 2 + static_cast<int>(i % 13) + (i % 7 == 3 ? 38 : 0);
    req.profile = gen::GenProfile::unconstrained(n);
    req.profile.deadline_ratio_min = dc.ratio_min;
    req.profile.deadline_ratio_max = dc.ratio_max;
    // Spread loads across the schedulability cliff so the corpus mixes
    // accepts, rejects, and per-analyzer disagreements.
    req.target_system_util = 5.0 + 90.0 * static_cast<double>(i % 19) / 18.0;
    req.target_tolerance = 2.0;
    req.seed = gen::derive_seed(salt, i);
    if (auto ts = gen::generate(req)) out.push_back(std::move(*ts));
  }
  return out;
}

void expect_fast_matches(const FastVerdict& fast, const TestReport& ref,
                         const char* what, std::uint64_t index) {
  EXPECT_EQ(fast.verdict, ref.verdict) << what << " taskset#" << index;
  if (ref.first_failing_task.has_value()) {
    EXPECT_EQ(fast.first_failing_task,
              static_cast<std::ptrdiff_t>(*ref.first_failing_task))
        << what << " taskset#" << index;
  } else {
    EXPECT_EQ(fast.first_failing_task, -1) << what << " taskset#" << index;
  }
}

TEST(FastPathParity, KernelsMatchReferenceEvaluatorsAcrossSeeds) {
  const Device dev{100};
  const auto corpus = generate_corpus(0x50A'FA57, 1050);
  ASSERT_GE(corpus.size(), 1050u) << "the parity bar is >= 1k seeds";

  // Option variants: defaults plus every knob the kernels must honor.
  std::vector<analysis::DpOptions> dp_opts(2);
  dp_opts[1].alpha = analysis::DpOptions::Alpha::kOriginalReal;
  dp_opts[1].require_implicit_deadlines = false;
  std::vector<analysis::Gn1Options> gn1_opts(2);
  gn1_opts[1].normalization = analysis::Gn1Options::Normalization::kBclWindowDk;
  gn1_opts[1].rhs = analysis::Gn1Options::Rhs::kTheoremLiteral;
  std::vector<analysis::Gn2Options> gn2_opts(3);
  gn2_opts[1].non_strict_condition2 = true;
  gn2_opts[2].bak2_middle_branch = true;

  AnalysisScratch scratch;
  std::vector<Gn2Choice> choices;
  std::uint64_t compared = 0;
  for (std::uint64_t t = 0; t < corpus.size(); ++t) {
    const TaskSet& ts = corpus[t];
    scratch.build(ts);
    choices.assign(ts.size(), Gn2Choice{});

    for (const auto& opt : dp_opts) {
      expect_fast_matches(analysis::detail::dp_fast(scratch, dev, opt),
                          analysis::dp_test(ts, dev, opt), "dp", t);
      ++compared;
    }
    for (const auto& opt : gn1_opts) {
      expect_fast_matches(analysis::detail::gn1_fast(scratch, dev, opt),
                          analysis::gn1_test(ts, dev, opt), "gn1", t);
      ++compared;
    }
    for (const auto& opt : gn2_opts) {
      const TestReport ref = analysis::gn2_test(ts, dev, opt);
      const FastVerdict fast =
          analysis::detail::gn2_fast(scratch, dev, opt, choices);
      expect_fast_matches(fast, ref, "gn2", t);
      // Full-evaluation mode: every task's witness (chosen λ candidate and
      // satisfied condition) must match the reference's per-task record.
      if (ref.per_task.size() == ts.size()) {
        for (std::size_t k = 0; k < ts.size(); ++k) {
          ASSERT_EQ(choices[k].pass, ref.per_task[k].pass)
              << "gn2 task " << k << " taskset#" << t;
          if (choices[k].pass) {
            EXPECT_EQ(choices[k].lambda, ref.per_task[k].lambda)
                << "gn2 task " << k << " taskset#" << t;
            EXPECT_EQ(choices[k].condition, ref.per_task[k].condition)
                << "gn2 task " << k << " taskset#" << t;
          }
        }
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 1000u) << "the parity bar is >= 1k randomized checks";
}

TEST(FastPathParity, EngineDecideMatchesRunAcrossSeeds) {
  const Device dev{100};
  const auto corpus = generate_corpus(0xDEC1DE, 120);
  ASSERT_GE(corpus.size(), 120u);

  const AnalysisEngine diag{AnalysisRequest{}};  // run-all, full reports
  AnalysisRequest fast_request;
  fast_request.diagnostics = false;
  fast_request.measure = false;
  const AnalysisEngine fast{std::move(fast_request)};

  for (const TaskSet& ts : corpus) {
    const auto report = diag.run(ts, dev);
    const analysis::Decision decision = fast.decide(ts, dev);
    ASSERT_EQ(decision.verdict, report.verdict);
    ASSERT_EQ(std::string(decision.accepted_by), report.accepted_by());

    // Fast-mode run(): minimal reports, same verdict/first_failing_task.
    const auto minimal = fast.run(ts, dev);
    ASSERT_EQ(minimal.verdict, report.verdict);
    ASSERT_EQ(minimal.accepted_by(), report.accepted_by());
    ASSERT_EQ(minimal.outcomes.size(), report.outcomes.size());
    for (std::size_t i = 0; i < minimal.outcomes.size(); ++i) {
      ASSERT_EQ(minimal.outcomes[i].ran, report.outcomes[i].ran);
      if (!minimal.outcomes[i].ran) continue;
      EXPECT_EQ(minimal.outcomes[i].report.verdict,
                report.outcomes[i].report.verdict);
      EXPECT_EQ(minimal.outcomes[i].report.first_failing_task,
                report.outcomes[i].report.first_failing_task);
      EXPECT_TRUE(minimal.outcomes[i].report.per_task.empty())
          << "fast mode must not materialize per-task diagnostics";
    }
  }
}

TEST(FastPathParity, KernelsHandleDegenerateInputs) {
  AnalysisScratch scratch;

  // Empty taskset: trivially schedulable, like the reference.
  scratch.build(TaskSet{});
  EXPECT_EQ(analysis::detail::dp_fast(scratch, Device{10}, {}).verdict,
            Verdict::kSchedulable);
  EXPECT_EQ(analysis::detail::gn2_fast(scratch, Device{10}, {}).verdict,
            Verdict::kSchedulable);

  // Infeasible task (A > A(H)): kInconclusive with the offending index.
  const TaskSet too_wide(
      {make_task(1.0, 5, 5, 2), make_task(1.0, 5, 5, 99)});
  scratch.build(too_wide);
  for (int which = 0; which < 3; ++which) {
    const FastVerdict v =
        which == 0   ? analysis::detail::dp_fast(scratch, Device{10}, {})
        : which == 1 ? analysis::detail::gn1_fast(scratch, Device{10}, {})
                     : analysis::detail::gn2_fast(scratch, Device{10}, {});
    EXPECT_EQ(v.verdict, Verdict::kInconclusive);
    EXPECT_EQ(v.first_failing_task, 1);
  }

  // The paper's Table 3 pair through the fast engine: GN2 accepts on the
  // small device exactly as the reference does.
  const TaskSet table3(
      {make_task(2.10, 5, 5, 7, "t1"), make_task(2.00, 7, 7, 7, "t2")});
  const AnalysisEngine fast{analysis::fast_any_request()};
  const analysis::Decision d = fast.decide(table3, Device{10});
  EXPECT_TRUE(d.accepted());
  EXPECT_EQ(d.accepted_by, "gn2");
}

}  // namespace
}  // namespace reconf
