// Constrained-deadline (D < T) coverage: the analytical paths the paper's
// own experiments never exercise — GN1's N_i clamp and carry-in truncation,
// GN2's λ_k = λ·max(1, T_k/D_k) scaling, BCL/BAK1/BAK2's density handling —
// validated for soundness against simulation and for exact/double
// agreement.

#include <cstdint>

#include <gtest/gtest.h>

#include "analysis/gn1.hpp"
#include "analysis/gn2.hpp"
#include "gen/generator.hpp"
#include "mp/mp_tests.hpp"
#include "sim/engine.hpp"
#include "task/io.hpp"

namespace reconf {
namespace {

std::optional<TaskSet> constrained_sample(std::uint64_t seed, int n,
                                          double us) {
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(n);
  req.profile.deadline_ratio_min = 0.5;
  req.profile.deadline_ratio_max = 0.95;
  req.target_system_util = us;
  req.seed = seed;
  return gen::generate_with_retries(req);
}

struct CdCase {
  std::uint64_t seed;
  int num_tasks;
  double target_us;
};

class ConstrainedSweep : public ::testing::TestWithParam<CdCase> {};

TEST_P(ConstrainedSweep, Gn1AndGn2StaySoundForConstrainedDeadlines) {
  const CdCase& c = GetParam();
  const Device dev{100};
  const auto ts = constrained_sample(c.seed, c.num_tasks, c.target_us);
  if (!ts) GTEST_SKIP();
  ASSERT_TRUE(ts->all_constrained_deadline());

  const bool gn1 = analysis::gn1_test(*ts, dev).accepted();
  const bool gn2 = analysis::gn2_test(*ts, dev).accepted();
  if (!gn1 && !gn2) return;

  sim::SimConfig cfg;
  cfg.horizon_periods = 60;
  cfg.scheduler = sim::SchedulerKind::kEdfNf;
  EXPECT_TRUE(sim::simulate(*ts, dev, cfg).schedulable)
      << "gn1=" << gn1 << " gn2=" << gn2 << "\n"
      << io::to_string(*ts, dev);
  if (gn2) {
    cfg.scheduler = sim::SchedulerKind::kEdfFkF;
    EXPECT_TRUE(sim::simulate(*ts, dev, cfg).schedulable)
        << io::to_string(*ts, dev);
  }
}

TEST_P(ConstrainedSweep, ExactAndDoubleAgreeForConstrainedDeadlines) {
  const CdCase& c = GetParam();
  const Device dev{100};
  const auto ts = constrained_sample(c.seed ^ 0xCD, c.num_tasks, c.target_us);
  if (!ts) GTEST_SKIP();

  EXPECT_EQ(analysis::gn1_test(*ts, dev).accepted(),
            analysis::gn1_test_exact(*ts, dev).accepted())
      << io::to_string(*ts, dev);
  EXPECT_EQ(analysis::gn2_test(*ts, dev).accepted(),
            analysis::gn2_test_exact(*ts, dev).accepted())
      << io::to_string(*ts, dev);
}

TEST_P(ConstrainedSweep, MpTestsStaySoundOnUnitAreaConstrainedSets) {
  const CdCase& c = GetParam();
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(c.num_tasks);
  req.profile.area_min = req.profile.area_max = 1;
  req.profile.deadline_ratio_min = 0.5;
  req.profile.deadline_ratio_max = 0.95;
  req.target_system_util = std::min(3.0, c.target_us / 25.0);
  req.target_tolerance = 0.05;
  req.seed = c.seed ^ 0x3333;
  const auto ts = gen::generate_with_retries(req);
  if (!ts) GTEST_SKIP();

  const mp::MpPlatform cpu{4};
  const bool bcl = mp::bcl_test(*ts, cpu).accepted();
  const bool bak1 = mp::bak1_test(*ts, cpu).accepted();
  const bool bak2 = mp::bak2_test(*ts, cpu).accepted();
  if (!bcl && !bak1 && !bak2) return;

  // m identical processors == unit-area FPGA of width m.
  sim::SimConfig cfg;
  cfg.horizon_periods = 60;
  cfg.scheduler = sim::SchedulerKind::kEdfNf;
  EXPECT_TRUE(sim::simulate(*ts, Device{4}, cfg).schedulable)
      << "bcl=" << bcl << " bak1=" << bak1 << " bak2=" << bak2 << "\n"
      << io::to_string(*ts, Device{4});
}

std::vector<CdCase> cd_cases() {
  std::vector<CdCase> cases;
  for (const int n : {3, 8}) {
    for (const double us : {15.0, 30.0, 50.0}) {
      for (std::uint64_t s = 0; s < 8; ++s) {
        cases.push_back({0xCD00 + s * 11 + static_cast<std::uint64_t>(n), n,
                         us});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomTasksets, ConstrainedSweep,
                         ::testing::ValuesIn(cd_cases()),
                         [](const ::testing::TestParamInfo<CdCase>& info) {
                           const CdCase& c = info.param;
                           return "n" + std::to_string(c.num_tasks) + "_us" +
                                  std::to_string(static_cast<int>(c.target_us)) +
                                  "_s" + std::to_string(c.seed & 0xFFFF);
                         });

// --------------------------------------------------------------- directed --
TEST(ConstrainedDirected, Gn1CarryInTruncationWindow) {
  // D_k smaller than every other period: N_i = 0 for all i, so W̄ reduces to
  // min(C_i, D_k) — a pure carry-in window. Light carry-ins must pass.
  const TaskSet ts({
      make_task(0.5, 2, 10, 10),   // the short-deadline task under analysis
      make_task(1.0, 15, 15, 20),  // carry-in only
      make_task(2.0, 20, 20, 30),  // carry-in only
  });
  const auto r = analysis::gn1_test(ts, Device{100});
  EXPECT_TRUE(r.accepted());
}

TEST(ConstrainedDirected, Gn2LambdaScalingRejectsDenseShortDeadline) {
  // λ_k = λ·T_k/D_k ≥ C_k/D_k: a task with C close to D < T forces
  // λ_k ≈ 1 for every candidate, leaving no slack fraction — GN2 must
  // reject rather than divide by a vanishing (1 − λ_k).
  const TaskSet ts({make_task(1.9, 2, 10, 50), make_task(1, 10, 10, 50)});
  const auto r = analysis::gn2_test(ts, Device{100});
  EXPECT_FALSE(r.accepted());
  // And the simulator agrees it is genuinely hard: τ1 needs 95% of every
  // window while τ2 blocks half the device… but EDF still makes it because
  // they fit together (50+50 = 100). Document the actual behaviour:
  const auto run = sim::simulate(ts, Device{100});
  EXPECT_TRUE(run.schedulable);  // the bound is pessimistic here, not wrong
}

TEST(ConstrainedDirected, BclUsesDeadlineNotPeriodForSlack) {
  // Same C and T, shrinking D must eventually flip BCL to reject.
  const TaskSet loose({make_task(2, 10, 10, 1), make_task(2, 10, 10, 1),
                       make_task(2, 10, 10, 1)});
  const TaskSet tight({make_task(2, 2.2, 10, 1), make_task(2, 2.2, 10, 1),
                       make_task(2, 2.2, 10, 1)});
  EXPECT_TRUE(mp::bcl_test(loose, mp::MpPlatform{2}).accepted());
  EXPECT_FALSE(mp::bcl_test(tight, mp::MpPlatform{2}).accepted());
}

}  // namespace
}  // namespace reconf
