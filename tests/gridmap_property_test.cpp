// Randomized consistency of the 2D occupancy grid: a reference
// implementation (plain cell matrix) shadows GridMap through random
// allocate/release/query sequences; every observable must agree. Also
// checks the contracts of find_position across strategies.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "area2d/grid_map.hpp"
#include "common/rng.hpp"

namespace reconf::area2d {
namespace {

/// Brute-force shadow of GridMap.
class ShadowGrid {
 public:
  ShadowGrid(Area w, Area h) : w_(w), h_(h), cells_(static_cast<std::size_t>(w) * h, false) {}

  [[nodiscard]] bool is_free(const Rect& r) const {
    for (Area y = r.y; y < r.top(); ++y) {
      for (Area x = r.x; x < r.right(); ++x) {
        if (cells_[idx(x, y)]) return false;
      }
    }
    return true;
  }
  void set(const Rect& r, bool value) {
    for (Area y = r.y; y < r.top(); ++y) {
      for (Area x = r.x; x < r.right(); ++x) cells_[idx(x, y)] = value;
    }
  }
  [[nodiscard]] std::int64_t free_cells() const {
    std::int64_t n = 0;
    for (const bool c : cells_) n += c ? 0 : 1;
    return n;
  }
  [[nodiscard]] bool fits_anywhere(Area w, Area h) const {
    for (Area y = 0; y + h <= h_; ++y) {
      for (Area x = 0; x + w <= w_; ++x) {
        if (is_free(Rect{x, y, w, h})) return true;
      }
    }
    return false;
  }

 private:
  [[nodiscard]] std::size_t idx(Area x, Area y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w_) +
           static_cast<std::size_t>(x);
  }
  Area w_;
  Area h_;
  std::vector<bool> cells_;
};

class GridMapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridMapFuzz, AgreesWithShadowThroughRandomOperations) {
  const Area W = 16;
  const Area H = 12;
  GridMap map(Device2D{W, H});
  ShadowGrid shadow(W, H);
  std::vector<Rect> live;

  Xoshiro256ss rng(GetParam());
  for (int op = 0; op < 400; ++op) {
    const std::int64_t dice = rng.uniform_int(0, 9);
    if (dice < 6) {  // try to allocate a random rect via find_position
      const Area w = static_cast<Area>(rng.uniform_int(1, 6));
      const Area h = static_cast<Area>(rng.uniform_int(1, 6));
      const auto strategy = rng.uniform_int(0, 1) == 0
                                ? Strategy2D::kBottomLeft
                                : Strategy2D::kContactPerimeter;
      const auto pos = map.find_position(w, h, strategy);
      ASSERT_EQ(pos.has_value(), shadow.fits_anywhere(w, h))
          << "fit disagreement at op " << op;
      if (pos) {
        ASSERT_EQ(pos->w, w);
        ASSERT_EQ(pos->h, h);
        ASSERT_TRUE(pos->within(map.device()));
        ASSERT_TRUE(shadow.is_free(*pos)) << "chosen position not free";
        map.allocate(*pos);
        shadow.set(*pos, true);
        live.push_back(*pos);
      }
    } else if (!live.empty()) {  // release a random live rect
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      map.release(live[pick]);
      shadow.set(live[pick], false);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(map.free_cells(), shadow.free_cells()) << "op " << op;
  }

  // Random freeness probes at the end.
  for (int probe = 0; probe < 100; ++probe) {
    const Area w = static_cast<Area>(rng.uniform_int(1, 8));
    const Area h = static_cast<Area>(rng.uniform_int(1, 8));
    const Area x = static_cast<Area>(rng.uniform_int(0, W - w));
    const Area y = static_cast<Area>(rng.uniform_int(0, H - h));
    const Rect r{x, y, w, h};
    ASSERT_EQ(map.is_free(r), shadow.is_free(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridMapFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace reconf::area2d
