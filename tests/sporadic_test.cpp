// Sporadic arrival model: T_i is the minimum inter-arrival time (paper
// Section 2 defines tasks as "periodic or sporadic"). Sufficient tests
// quantify over all arrival patterns, so accepted tasksets must also
// survive jittered sporadic releases.

#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "gen/generator.hpp"
#include "sim/engine.hpp"
#include "task/fixtures.hpp"
#include "task/io.hpp"

namespace reconf::sim {
namespace {

TEST(Sporadic, ReleasesRespectMinimumSeparation) {
  const TaskSet ts({make_task(1, 5, 5, 4)});
  SimConfig cfg;
  cfg.arrivals = ArrivalModel::kSporadic;
  cfg.sporadic_jitter = 0.5;
  cfg.arrival_seed = 42;
  cfg.horizon = 10'000;
  const auto r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  // With jitter up to 0.5·T the expected inter-arrival is 1.25·T, so the
  // job count is strictly between horizon/(1.5T) and horizon/T.
  EXPECT_LT(r.jobs_released, 10'000u / 500u);
  EXPECT_GE(r.jobs_released, 10'000u / 750u);
}

TEST(Sporadic, ZeroJitterEqualsPeriodic) {
  const TaskSet ts = fixtures::paper_table1();
  SimConfig periodic;
  SimConfig sporadic;
  sporadic.arrivals = ArrivalModel::kSporadic;
  sporadic.sporadic_jitter = 0.0;
  const auto a = simulate(ts, fixtures::paper_device_small(), periodic);
  const auto b = simulate(ts, fixtures::paper_device_small(), sporadic);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.busy_area_time, b.busy_area_time);
  EXPECT_EQ(a.schedulable, b.schedulable);
}

TEST(Sporadic, DeterministicPerSeed) {
  const TaskSet ts = fixtures::paper_table1();
  SimConfig cfg;
  cfg.arrivals = ArrivalModel::kSporadic;
  cfg.arrival_seed = 7;
  const auto a = simulate(ts, fixtures::paper_device_small(), cfg);
  const auto b = simulate(ts, fixtures::paper_device_small(), cfg);
  EXPECT_EQ(a.jobs_released, b.jobs_released);
  EXPECT_EQ(a.busy_area_time, b.busy_area_time);

  cfg.arrival_seed = 8;
  const auto c = simulate(ts, fixtures::paper_device_small(), cfg);
  EXPECT_NE(a.busy_area_time, c.busy_area_time);  // different stream
}

TEST(Sporadic, AcceptedTasksetsSurviveJitteredArrivals) {
  const Device dev{100};
  int checked = 0;
  for (std::uint64_t seed = 0; seed < 30 && checked < 8; ++seed) {
    gen::GenRequest req;
    req.profile = gen::GenProfile::unconstrained(6);
    req.target_system_util = 15.0;
    req.seed = seed;
    const auto ts = gen::generate_with_retries(req);
    if (!ts || !analysis::composite_test(*ts, dev).accepted()) continue;
    ++checked;

    for (std::uint64_t arrival_seed = 0; arrival_seed < 3; ++arrival_seed) {
      SimConfig cfg;
      cfg.arrivals = ArrivalModel::kSporadic;
      cfg.sporadic_jitter = 0.7;
      cfg.arrival_seed = arrival_seed;
      cfg.horizon_periods = 60;
      const auto run = simulate(*ts, dev, cfg);
      EXPECT_TRUE(run.schedulable)
          << "accepted taskset missed under sporadic arrivals, seed "
          << seed << "/" << arrival_seed << "\n"
          << io::to_string(*ts, dev);
    }
  }
  EXPECT_GE(checked, 3);
}

TEST(Sporadic, JitterReducesLoadUnderOverload) {
  // Under overload, stretching inter-arrivals strictly reduces released
  // jobs; with enough jitter a miss-prone set can become schedulable in
  // the observed window.
  const TaskSet ts({make_task(3, 5, 5, 10), make_task(3, 5, 5, 10)});
  SimConfig periodic;
  periodic.stop_on_first_miss = false;
  periodic.horizon = 5000;
  const auto dense = simulate(ts, Device{10}, periodic);

  SimConfig cfg = periodic;
  cfg.arrivals = ArrivalModel::kSporadic;
  cfg.sporadic_jitter = 1.0;
  cfg.arrival_seed = 3;
  const auto sparse = simulate(ts, Device{10}, cfg);
  EXPECT_LT(sparse.jobs_released, dense.jobs_released);
  EXPECT_LE(sparse.deadline_misses, dense.deadline_misses);
}

TEST(Sporadic, ArrivalModelNamesAreStable) {
  EXPECT_STREQ(to_string(ArrivalModel::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(ArrivalModel::kSporadic), "sporadic");
}

}  // namespace
}  // namespace reconf::sim
