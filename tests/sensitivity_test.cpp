#include <gtest/gtest.h>

#include "analysis/composite.hpp"
#include "analysis/dp.hpp"
#include "analysis/sensitivity.hpp"
#include "sim/engine.hpp"
#include "task/fixtures.hpp"

namespace reconf::analysis {
namespace {

AcceptPredicate dp_pred() {
  return [](const TaskSet& ts, Device dev) {
    return dp_test(ts, dev).accepted();
  };
}

AcceptPredicate sim_pred() {
  return [](const TaskSet& ts, Device dev) {
    return sim::simulate(ts, dev).schedulable;
  };
}

TEST(ScaleWcets, ScalesAndClamps) {
  const TaskSet ts({make_task(2, 5, 5, 4)});
  EXPECT_EQ(scale_wcets(ts, 1500)[0].wcet, 300);
  EXPECT_EQ(scale_wcets(ts, 500)[0].wcet, 100);
  EXPECT_EQ(scale_wcets(ts, 0)[0].wcet, 1);        // floor at one tick
  EXPECT_EQ(scale_wcets(ts, 10000)[0].wcet, 500);  // cap at min(D, T)
}

TEST(CriticalScale, ExactOnAnalyticBound) {
  // Single task, A=10 on A(H)=10: DP accepts iff U_S = 10·C/T ≤ A_bnd·(1−u)
  // + 10u with A_bnd = 1 → accepts iff 10u ≤ 1 + 9u ⟺ u ≤ 1: always. Use
  // two tasks to get a real boundary instead.
  const TaskSet ts({make_task(1, 10, 10, 6), make_task(1, 10, 10, 6)});
  const Device dev{10};
  const auto crit = critical_wcet_scale_permille(ts, dev, dp_pred());
  ASSERT_TRUE(crit.has_value());
  // The found point passes; the next permille fails (bisection contract).
  EXPECT_TRUE(dp_pred()(scale_wcets(ts, *crit), dev));
  if (*crit < 4000) {
    EXPECT_FALSE(dp_pred()(scale_wcets(ts, *crit + 1), dev));
  }
}

TEST(CriticalScale, SimulationDominatesBoundTests) {
  // The simulator's critical scale is an upper bound on any sound test's
  // critical scale for the same scheduler (pessimism quantified).
  const TaskSet ts = fixtures::paper_table1();
  const Device dev = fixtures::paper_device_small();
  const auto test_crit = critical_wcet_scale_permille(ts, dev, dp_pred());
  const auto sim_crit = critical_wcet_scale_permille(ts, dev, sim_pred());
  ASSERT_TRUE(test_crit && sim_crit);
  EXPECT_LE(*test_crit, *sim_crit);
  EXPECT_GE(*test_crit, 1000);  // Table 1 is DP-accepted at factor 1.0
}

TEST(CriticalScale, RejectsWhenEvenFloorFails) {
  // A task wider than the device fails at any scaling.
  const TaskSet ts({make_task(1, 5, 5, 12)});
  EXPECT_FALSE(
      critical_wcet_scale_permille(ts, Device{10}, dp_pred()).has_value());
}

TEST(CriticalScale, EmptyTasksetSaturates) {
  EXPECT_EQ(critical_wcet_scale_permille(TaskSet{}, Device{10}, dp_pred()),
            4000);
}

TEST(MinWidth, FindsExactThreshold) {
  const TaskSet ts = fixtures::paper_table1();
  const auto w = min_feasible_width(ts, dp_pred(), 100);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(dp_pred()(ts, Device{*w}));
  EXPECT_FALSE(dp_pred()(ts, Device{static_cast<Area>(*w - 1)}));
  EXPECT_EQ(*w, 10);  // Table 1 sits exactly on the A(H)=10 boundary
}

TEST(MinWidth, RespectsAmaxFloor) {
  const TaskSet ts({make_task(1, 10, 10, 7)});
  const auto w = min_feasible_width(ts, dp_pred(), 100);
  ASSERT_TRUE(w.has_value());
  EXPECT_GE(*w, 7);
}

TEST(MinWidth, NulloptWhenCapTooSmall) {
  const TaskSet ts({make_task(1, 10, 10, 50)});
  EXPECT_FALSE(min_feasible_width(ts, dp_pred(), 40).has_value());
}

TEST(MinWidth, CompositeNeedsNoMoreThanAnyMember) {
  const TaskSet ts = fixtures::paper_table3();
  const auto any = min_feasible_width(
      ts,
      [](const TaskSet& t, Device d) {
        return composite_test(t, d).accepted();
      },
      200);
  const auto dp_only = min_feasible_width(ts, dp_pred(), 200);
  ASSERT_TRUE(any && dp_only);
  EXPECT_LE(*any, *dp_only);
  EXPECT_LE(*any, 10);  // GN2 accepts Table 3 at A(H) = 10
}

}  // namespace
}  // namespace reconf::analysis
