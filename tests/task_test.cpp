#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "task/fixtures.hpp"
#include "task/io.hpp"
#include "task/job.hpp"
#include "task/task.hpp"
#include "task/taskset.hpp"

namespace reconf {
namespace {

TEST(Task, UtilizationsMatchPaperTable1) {
  const Task t1 = make_task(1.26, 7, 7, 9);
  EXPECT_DOUBLE_EQ(t1.time_utilization(), 0.18);
  EXPECT_DOUBLE_EQ(t1.system_utilization(), 1.62);
  EXPECT_EQ(t1.time_utilization_exact(), math::Rational(9, 50));
  EXPECT_TRUE(t1.implicit_deadline());
  EXPECT_TRUE(t1.constrained_deadline());
}

TEST(Task, DensityDiffersForConstrainedDeadline) {
  const Task t = make_task(2.0, 4, 8, 5);
  EXPECT_DOUBLE_EQ(t.time_utilization(), 0.25);
  EXPECT_DOUBLE_EQ(t.density(), 0.5);
  EXPECT_FALSE(t.implicit_deadline());
  EXPECT_TRUE(t.constrained_deadline());
}

TEST(Task, WellFormedRejectsNonPositive) {
  Task t = make_task(1, 2, 2, 3);
  EXPECT_TRUE(t.well_formed());
  t.area = 0;
  EXPECT_FALSE(t.well_formed());
  t.area = 3;
  t.wcet = 0;
  EXPECT_FALSE(t.well_formed());
}

TEST(TaskSet, AggregatesMatchPaperTable1) {
  const TaskSet ts = fixtures::paper_table1();
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_NEAR(ts.time_utilization(), 0.37, 1e-12);
  EXPECT_NEAR(ts.system_utilization(), 2.76, 1e-12);
  EXPECT_EQ(ts.max_area(), 9);
  EXPECT_EQ(ts.min_area(), 6);
  EXPECT_EQ(ts.total_area(), 15);
  EXPECT_EQ(ts.max_period(), 700);
  EXPECT_TRUE(ts.all_implicit_deadline());
  EXPECT_EQ(ts.system_utilization_exact(), math::BigRational(69, 25));
}

TEST(TaskSet, HyperperiodIsLcmOfPeriods) {
  const TaskSet ts = fixtures::paper_table1();  // periods 700, 500
  ASSERT_TRUE(ts.hyperperiod().has_value());
  EXPECT_EQ(*ts.hyperperiod(), 3500);
}

TEST(TaskSet, HyperperiodOverflowReturnsNullopt) {
  std::vector<Task> tasks;
  // Large pairwise-coprime periods overflow the LCM.
  for (const Ticks p : {999999937LL, 999999893LL, 999999883LL, 999999797LL}) {
    Task t;
    t.wcet = 1;
    t.deadline = p;
    t.period = p;
    t.area = 1;
    tasks.push_back(t);
  }
  EXPECT_FALSE(TaskSet(std::move(tasks)).hyperperiod().has_value());
}

TEST(TaskSet, WithUniformAreaRewritesAreasOnly) {
  const TaskSet ts = fixtures::paper_table1().with_uniform_area(1);
  EXPECT_EQ(ts.max_area(), 1);
  EXPECT_EQ(ts.min_area(), 1);
  EXPECT_NEAR(ts.system_utilization(), ts.time_utilization(), 1e-12);
  EXPECT_EQ(ts[0].wcet, 126);
}

TEST(TaskSet, WithWcetIncreasedAddsPerTaskExtra) {
  const TaskSet ts = fixtures::paper_table1();
  const TaskSet inflated = ts.with_wcet_increased({10, 0});
  EXPECT_EQ(inflated[0].wcet, 136);
  EXPECT_EQ(inflated[1].wcet, 95);
  EXPECT_GT(inflated.system_utilization(), ts.system_utilization());
}

TEST(TaskSet, EmptySetIsSane) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.time_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(ts.system_utilization(), 0.0);
}

TEST(Feasibility, AcceptsPaperFixtures) {
  EXPECT_FALSE(basic_feasibility_issue(fixtures::paper_table1(),
                                       fixtures::paper_device_small()));
  EXPECT_FALSE(basic_feasibility_issue(fixtures::paper_table2(),
                                       fixtures::paper_device_small()));
  EXPECT_FALSE(basic_feasibility_issue(fixtures::paper_table3(),
                                       fixtures::paper_device_small()));
}

TEST(Feasibility, FlagsExecutionExceedingDeadline) {
  const TaskSet ts({make_task(5, 4, 6, 2)});
  const auto issue = basic_feasibility_issue(ts, Device{10});
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->task_index, 0u);
  EXPECT_NE(issue->reason.find("C > D"), std::string::npos);
}

TEST(Feasibility, FlagsOversizedTask) {
  const TaskSet ts({make_task(1, 5, 5, 12)});
  const auto issue = basic_feasibility_issue(ts, Device{10});
  ASSERT_TRUE(issue.has_value());
  EXPECT_NE(issue->reason.find("A > A(H)"), std::string::npos);
}

TEST(Feasibility, FlagsInvalidDevice) {
  EXPECT_TRUE(basic_feasibility_issue(fixtures::paper_table1(), Device{0}));
}

TEST(Job, EdfOrderIsDeadlineThenReleaseThenIndex) {
  Job a{.task_index = 1, .sequence = 0, .release = 0, .abs_deadline = 500};
  Job b{.task_index = 0, .sequence = 0, .release = 0, .abs_deadline = 700};
  EXPECT_TRUE(edf_before(a, b));
  EXPECT_FALSE(edf_before(b, a));

  Job c = b;
  c.abs_deadline = 500;
  c.release = 100;
  EXPECT_TRUE(edf_before(a, c));  // earlier release wins the tie

  Job d = a;
  d.task_index = 2;
  EXPECT_TRUE(edf_before(a, d));  // lower task index wins the tie
}

TEST(TaskSetIo, RoundTripsExactly) {
  const TaskSet ts = fixtures::paper_table2();
  const Device dev = fixtures::paper_device_small();
  const std::string text = io::to_string(ts, dev);
  const io::ParsedTaskSet parsed = io::from_string(text);
  EXPECT_EQ(parsed.device.width, dev.width);
  ASSERT_EQ(parsed.taskset.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(parsed.taskset[i].wcet, ts[i].wcet);
    EXPECT_EQ(parsed.taskset[i].deadline, ts[i].deadline);
    EXPECT_EQ(parsed.taskset[i].period, ts[i].period);
    EXPECT_EQ(parsed.taskset[i].area, ts[i].area);
    EXPECT_EQ(parsed.taskset[i].name, ts[i].name);
  }
}

TEST(TaskSetIo, SkipsCommentsAndBlankLines) {
  const std::string text =
      "# generated\n\ntaskset v1\n# device next\ndevice 10\n"
      "task - 126 700 700 9\n";
  const io::ParsedTaskSet parsed = io::from_string(text);
  EXPECT_EQ(parsed.taskset.size(), 1u);
  EXPECT_TRUE(parsed.taskset[0].name.empty());
}

TEST(TaskSetIo, RejectsMalformedInput) {
  EXPECT_THROW(io::from_string("nonsense\n"), std::runtime_error);
  EXPECT_THROW(io::from_string("taskset v2\ndevice 10\n"),
               std::runtime_error);
  EXPECT_THROW(io::from_string("taskset v1\ndevice -1\n"),
               std::runtime_error);
  EXPECT_THROW(io::from_string("taskset v1\ndevice 10\ntask x 1 2\n"),
               std::runtime_error);
  EXPECT_THROW(io::from_string("taskset v1\ndevice 10\ntask x 0 2 2 1\n"),
               std::runtime_error);
  // Missing device line.
  EXPECT_THROW(io::from_string("taskset v1\ntask x 1 2 2 1\n"),
               std::runtime_error);
}

TEST(TaskSetIo, FormatTableMentionsAggregates) {
  const std::string table = io::format_table(fixtures::paper_table3(),
                                             fixtures::paper_device_small());
  EXPECT_NE(table.find("A_max = 7"), std::string::npos);
  EXPECT_NE(table.find("U_S"), std::string::npos);
}

}  // namespace
}  // namespace reconf
