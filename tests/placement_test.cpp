#include <gtest/gtest.h>

#include "placement/column_map.hpp"

namespace reconf::placement {
namespace {

TEST(ColumnMap, StartsFullyFree) {
  const ColumnMap map(100);
  EXPECT_EQ(map.width(), 100);
  EXPECT_EQ(map.free_area(), 100);
  EXPECT_EQ(map.occupied_area(), 0);
  EXPECT_EQ(map.largest_gap(), 100);
  EXPECT_DOUBLE_EQ(map.fragmentation(), 0.0);
}

TEST(ColumnMap, AllocateSplitsGap) {
  ColumnMap map(100);
  map.allocate({10, 30});
  EXPECT_EQ(map.free_area(), 80);
  const auto gaps = map.gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (Interval{0, 10}));
  EXPECT_EQ(gaps[1], (Interval{30, 100}));
  EXPECT_FALSE(map.is_free({9, 11}));
  EXPECT_TRUE(map.is_free({0, 10}));
}

TEST(ColumnMap, ReleaseCoalescesNeighbors) {
  ColumnMap map(100);
  map.allocate({10, 30});
  map.allocate({30, 50});
  EXPECT_EQ(map.gaps().size(), 2u);  // [0,10) and [50,100)
  map.release({10, 30});
  EXPECT_EQ(map.gaps().size(), 2u);  // coalesced left: [0,30) and [50,100)
  map.release({30, 50});
  // All free again: a single [0,100) gap.
  const auto gaps = map.gaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (Interval{0, 100}));
  EXPECT_EQ(map.free_area(), 100);
}

TEST(ColumnMap, FirstFitPicksLeftmost) {
  ColumnMap map(100);
  map.allocate({10, 20});  // gaps: [0,10) and [20,100)
  const auto gap = map.find_gap(5, Strategy::kFirstFit);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, (Interval{0, 5}));
}

TEST(ColumnMap, FirstFitSkipsTooSmallGap) {
  ColumnMap map(100);
  map.allocate({10, 20});
  const auto gap = map.find_gap(15, Strategy::kFirstFit);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, (Interval{20, 35}));
}

TEST(ColumnMap, BestFitPicksSmallestGap) {
  ColumnMap map(100);
  map.allocate({10, 20});  // gaps 10 and 80
  const auto gap = map.find_gap(8, Strategy::kBestFit);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, (Interval{0, 8}));
}

TEST(ColumnMap, WorstFitPicksLargestGap) {
  ColumnMap map(100);
  map.allocate({10, 20});
  const auto gap = map.find_gap(8, Strategy::kWorstFit);
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, (Interval{20, 28}));
}

TEST(ColumnMap, NoGapReturnsNullopt) {
  ColumnMap map(20);
  map.allocate({5, 15});  // gaps 5 and 5
  EXPECT_FALSE(map.find_gap(6, Strategy::kFirstFit).has_value());
  EXPECT_FALSE(map.find_gap(6, Strategy::kBestFit).has_value());
  EXPECT_FALSE(map.find_gap(6, Strategy::kWorstFit).has_value());
}

TEST(ColumnMap, FragmentationDistinguishesAreaFromContiguity) {
  ColumnMap map(20);
  map.allocate({5, 15});
  EXPECT_TRUE(map.fits_by_area(10));         // 10 columns free in total
  EXPECT_FALSE(map.fits_contiguously(10));   // but split 5 + 5
  EXPECT_TRUE(map.fits_contiguously(5));
  EXPECT_DOUBLE_EQ(map.fragmentation(), 0.5);
}

TEST(ColumnMap, FullMapHasZeroFragmentation) {
  ColumnMap map(10);
  map.allocate({0, 10});
  EXPECT_EQ(map.free_area(), 0);
  EXPECT_DOUBLE_EQ(map.fragmentation(), 0.0);
  EXPECT_FALSE(map.fits_by_area(1));
}

TEST(ColumnMap, ClearRestoresFullDevice) {
  ColumnMap map(50);
  map.allocate({0, 20});
  map.allocate({30, 40});
  map.clear();
  EXPECT_EQ(map.free_area(), 50);
  EXPECT_EQ(map.gaps().size(), 1u);
}

TEST(ColumnMap, AdjacentAllocationsAndReleasesStressConsistency) {
  ColumnMap map(64);
  // Allocate every other 4-column block, then free them in reverse.
  for (Area lo = 0; lo + 4 <= 64; lo += 8) map.allocate({lo, lo + 4});
  EXPECT_EQ(map.free_area(), 32);
  EXPECT_EQ(map.largest_gap(), 4);
  for (Area lo = 56; lo >= 0; lo -= 8) map.release({lo, lo + 4});
  EXPECT_EQ(map.free_area(), 64);
  EXPECT_EQ(map.gaps().size(), 1u);
}

TEST(ColumnMap, StrategyNamesAreStable) {
  EXPECT_STREQ(to_string(Strategy::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(Strategy::kBestFit), "best-fit");
  EXPECT_STREQ(to_string(Strategy::kWorstFit), "worst-fit");
}

}  // namespace
}  // namespace reconf::placement
