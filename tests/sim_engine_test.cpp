#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "task/fixtures.hpp"
#include "task/task.hpp"

namespace reconf::sim {
namespace {

SimConfig nf_config() {
  SimConfig c;
  c.scheduler = SchedulerKind::kEdfNf;
  return c;
}

SimConfig fkf_config() {
  SimConfig c;
  c.scheduler = SchedulerKind::kEdfFkF;
  return c;
}

// ----------------------------------------------------------- basic cases --
TEST(SimEngine, EmptyTaskSetIsSchedulable) {
  const SimResult r = simulate(TaskSet{}, Device{10});
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.jobs_released, 0u);
}

TEST(SimEngine, SingleTaskRunsToCompletion) {
  // One task alone: C=2, D=T=5, A=4 on a width-10 device; 1 job per period.
  const TaskSet ts({make_task(2, 5, 5, 4)});
  SimConfig cfg = nf_config();
  cfg.horizon = 1500;  // 3 periods
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.jobs_released, 3u);
  EXPECT_EQ(r.jobs_completed, 3u);
  EXPECT_EQ(r.deadline_misses, 0u);
  // busy_area_time = 3 jobs × 200 ticks × 4 columns.
  EXPECT_EQ(r.busy_area_time, 3 * 200 * 4);
}

TEST(SimEngine, TaskUsingWholePeriodStillMeets) {
  const TaskSet ts({make_task(5, 5, 5, 10)});
  SimConfig cfg = nf_config();
  cfg.horizon = 1000;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.jobs_completed, 2u);
}

TEST(SimEngine, OverloadedSingleTaskMisses) {
  // C > D: infeasible in isolation.
  const TaskSet ts({make_task(6, 5, 5, 4)});
  const SimResult r = simulate(ts, Device{10}, nf_config());
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.first_miss.has_value());
  EXPECT_EQ(r.first_miss->task_index, 0u);
}

TEST(SimEngine, OversizedTaskMissesImmediately) {
  const TaskSet ts({make_task(1, 5, 5, 11)});
  const SimResult r = simulate(ts, Device{10}, nf_config());
  EXPECT_FALSE(r.schedulable);
}

TEST(SimEngine, TwoIndependentTasksRunConcurrently) {
  // Areas 4+6 = 10 fit together: both execute in parallel from t=0.
  const TaskSet ts({make_task(3, 5, 5, 4), make_task(3, 5, 5, 6)});
  SimConfig cfg = nf_config();
  cfg.horizon = 500;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  // Both run [0,300): occupancy 10 for 300 ticks.
  EXPECT_EQ(r.busy_area_time, 300 * 10);
  EXPECT_EQ(r.preemptions, 0u);
}

TEST(SimEngine, AreaContentionSerializesExecution) {
  // Two area-6 tasks cannot share a width-10 device: EDF serializes them.
  // C=2,T=D=5 each: τ1 runs [0,200), τ2 [200,400) — both meet deadlines.
  const TaskSet ts({make_task(2, 5, 5, 6), make_task(2, 5, 5, 6)});
  SimConfig cfg = nf_config();
  cfg.horizon = 500;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.busy_area_time, 400 * 6);
}

TEST(SimEngine, ContentionBeyondCapacityMisses) {
  // Two tasks each needing the full width and 60% of the period: the second
  // cannot finish by its deadline.
  const TaskSet ts({make_task(3, 5, 5, 10), make_task(3, 5, 5, 10)});
  const SimResult r = simulate(ts, Device{10}, nf_config());
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.first_miss.has_value());
  EXPECT_EQ(r.first_miss->task_index, 1u);
  EXPECT_EQ(r.first_miss->deadline, 500);
}

// -------------------------------------------------- EDF-NF vs EDF-FkF gap --
TEST(SimEngine, NfExploitsIdleAreaThatBlocksFkF) {
  // Classic Danne scenario: a wide job at the queue head blocks FkF.
  //   τ1: C=4, D=T=10, A=6  (EDF order: first)
  //   τ2: C=4, D=T=10, A=6  (second, same deadline, later index)
  //   τ3: C=9, D=T=10, A=4  (longest deadline? same D; order by index)
  // At t=0 queue = τ1, τ2, τ3 (release ties broken by index).
  // FkF: runs τ1 (area 6); τ2 does not fit (12 > 10) → stops; τ3 blocked
  //      even though its area-4 would fit → τ3 accumulates only 6 ticks of
  //      service per 10-tick window → misses.
  // NF: runs τ1 + τ3 concurrently (6+4=10), then τ2 + τ3 → all meet.
  const TaskSet ts({
      make_task(4, 10, 10, 6),
      make_task(4, 10, 10, 6),
      make_task(9, 10, 10, 4),
  });
  const Device dev{10};

  const SimResult nf = simulate(ts, dev, nf_config());
  EXPECT_TRUE(nf.schedulable);

  const SimResult fkf = simulate(ts, dev, fkf_config());
  EXPECT_FALSE(fkf.schedulable);
  ASSERT_TRUE(fkf.first_miss.has_value());
  EXPECT_EQ(fkf.first_miss->task_index, 2u);
}

TEST(SimEngine, FkFandNfAgreeWithoutBlocking) {
  // When every pair fits, the two schedulers produce identical schedules.
  const TaskSet ts({make_task(2, 5, 5, 3), make_task(3, 7, 7, 4)});
  SimConfig nf = nf_config();
  SimConfig fkf = fkf_config();
  nf.horizon = fkf.horizon = 3500;
  const SimResult a = simulate(ts, Device{10}, nf);
  const SimResult b = simulate(ts, Device{10}, fkf);
  EXPECT_TRUE(a.schedulable);
  EXPECT_TRUE(b.schedulable);
  EXPECT_EQ(a.busy_area_time, b.busy_area_time);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

// ----------------------------------------------------------- preemption --
TEST(SimEngine, ShorterDeadlinePreemptsWiderJob) {
  // τ1: C=8, D=T=20, A=8 starts at 0. τ2: C=2, D=T=5, A=8 released at t=0
  // too — same instant, shorter deadline: τ2 runs first, τ1 waits (areas
  // cannot share). τ1 then runs and is preempted by τ2's next releases.
  const TaskSet ts({make_task(8, 20, 20, 8), make_task(2, 5, 5, 8)});
  SimConfig cfg = nf_config();
  cfg.horizon = 2000;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_GT(r.preemptions, 0u);
}

TEST(SimEngine, PreemptedWorkIsConserved) {
  const TaskSet ts({make_task(8, 20, 20, 8), make_task(2, 5, 5, 8)});
  SimConfig cfg = nf_config();
  cfg.horizon = 2000;  // exactly one hyperperiod
  cfg.record_trace = true;
  const SimResult r = simulate(ts, Device{10}, cfg);
  ASSERT_TRUE(r.schedulable);
  // One τ1 job (800 ticks) + four τ2 jobs (4×200).
  EXPECT_EQ(r.trace.time_work(0), 800);
  EXPECT_EQ(r.trace.time_work(1), 800);
  EXPECT_EQ(r.trace.system_work(0), 800 * 8);
}

// -------------------------------------------------------------- horizons --
TEST(SimEngine, DefaultHorizonIsHyperperiodWhenSmall) {
  const TaskSet ts = fixtures::paper_table1();  // periods 700/500, hp 3500
  SimConfig cfg = nf_config();
  EXPECT_EQ(default_horizon(ts, cfg), 3500);
}

TEST(SimEngine, DefaultHorizonIsCappedForLongHyperperiods) {
  // Coprime-ish periods: hyperperiod far exceeds the cap.
  const TaskSet ts({make_task(1, 9.97, 9.97, 1), make_task(1, 13.01, 13.01, 1),
                    make_task(1, 17.93, 17.93, 1)});
  SimConfig cfg = nf_config();
  cfg.horizon_periods = 50;
  EXPECT_EQ(default_horizon(ts, cfg), 50 * 1793);
}

TEST(SimEngine, ExplicitHorizonWins) {
  SimConfig cfg = nf_config();
  cfg.horizon = 12345;
  EXPECT_EQ(default_horizon(fixtures::paper_table1(), cfg), 12345);
}

// ------------------------------------------------------------- offsets --
TEST(SimEngine, OffsetsShiftReleases) {
  // τ2 offset past τ1's burst avoids all contention.
  const TaskSet ts({make_task(3, 5, 5, 10), make_task(3, 5, 5, 10)});
  SimConfig cfg = nf_config();
  cfg.offsets = {0, 300};
  cfg.horizon = 1000;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
}

// --------------------------------------------------- continue-on-miss --
TEST(SimEngine, ContinueModeCountsAllMisses) {
  const TaskSet ts({make_task(3, 5, 5, 10), make_task(3, 5, 5, 10)});
  SimConfig cfg = nf_config();
  cfg.stop_on_first_miss = false;
  cfg.horizon = 2000;  // 4 periods; τ2 misses each time
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_FALSE(r.schedulable);
  EXPECT_GE(r.deadline_misses, 3u);
  EXPECT_GT(r.jobs_completed, 0u);
}

// ----------------------------------------------------------- EDF-US mode --
TEST(SimEngine, EdfUsPrioritizesHeavyTask) {
  // System utilizations: τ1 = 8·10/20 = 4.0, τ2 = 8·2/5 = 3.2. With
  // ζ = 0.38 (threshold 3.8) only τ1 is heavy and always wins the device
  // despite its longer deadline.
  const TaskSet ts({make_task(10, 20, 20, 8), make_task(2, 5, 5, 8)});
  SimConfig cfg;
  cfg.scheduler = SchedulerKind::kEdfUs;
  cfg.edf_us_threshold = 0.38;
  cfg.horizon = 2000;
  const SimResult r = simulate(ts, Device{10}, cfg);
  // τ2 starves while τ1 runs [0,1000): τ2's t=500 deadline is missed.
  EXPECT_FALSE(r.schedulable);
  ASSERT_TRUE(r.first_miss.has_value());
  EXPECT_EQ(r.first_miss->task_index, 1u);
}

TEST(SimEngine, EdfUsFallsBackToEdfWhenNoTaskIsHeavy) {
  const TaskSet ts({make_task(2, 5, 5, 3), make_task(3, 7, 7, 4)});
  SimConfig us;
  us.scheduler = SchedulerKind::kEdfUs;
  us.edf_us_threshold = 0.9;  // nobody qualifies
  us.horizon = 3500;
  SimConfig nf = nf_config();
  nf.horizon = 3500;
  const SimResult a = simulate(ts, Device{10}, us);
  const SimResult b = simulate(ts, Device{10}, nf);
  EXPECT_EQ(a.schedulable, b.schedulable);
  EXPECT_EQ(a.busy_area_time, b.busy_area_time);
}

// ------------------------------------------------------------ overheads --
TEST(SimEngine, ReconfigOverheadDelaysExecution) {
  // C=2 (200 ticks), A=4, ρ=10 ticks/column → 40 ticks stall per placement.
  const TaskSet ts({make_task(2, 5, 5, 4)});
  SimConfig cfg = nf_config();
  cfg.reconf.per_column = 10;
  cfg.horizon = 500;
  cfg.record_trace = true;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.trace.time_work(0), 200);        // pure execution unchanged
  EXPECT_EQ(r.busy_area_time, (200 + 40) * 4);  // occupancy includes stall
}

TEST(SimEngine, ReconfigOverheadCanCauseMisses) {
  // C=4.5 of a 5-unit deadline: a 60-tick stall (ρ=15 × A=4) overruns.
  const TaskSet ts({make_task(4.5, 5, 5, 4)});
  SimConfig cfg = nf_config();
  cfg.reconf.per_column = 15;
  const SimResult r = simulate(ts, Device{10}, cfg);
  EXPECT_FALSE(r.schedulable);
}

TEST(SimEngine, ZeroOverheadMatchesPaperAssumption) {
  const TaskSet ts = fixtures::paper_table3();
  SimConfig cfg = nf_config();
  const SimResult r = simulate(ts, fixtures::paper_device_small(), cfg);
  EXPECT_TRUE(r.schedulable);  // GN2 accepts it; simulation must agree
}

// ------------------------------------------------------------- counters --
TEST(SimEngine, CountersAreConsistent) {
  const TaskSet ts = fixtures::paper_table1();
  SimConfig cfg = nf_config();
  const SimResult r = simulate(ts, fixtures::paper_device_small(), cfg);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.horizon, 3500);
  EXPECT_TRUE(r.horizon_was_hyperperiod);
  // 3500/700 = 5 jobs of τ1, 3500/500 = 7 jobs of τ2.
  EXPECT_EQ(r.jobs_released, 12u);
  EXPECT_EQ(r.jobs_completed, 12u);
  EXPECT_GT(r.dispatches, 0u);
  EXPECT_GE(r.placements, 12u);  // every job placed at least once
}

}  // namespace
}  // namespace reconf::sim
