// Golden-value pins for the deterministic RNG stack under the generators
// and the fuzz oracle. The contract these enforce: a seed printed by a CI
// failure (reconf_fuzz, the experiment harness, a soundness sweep) must
// reproduce the *bit-identical* taskset on any platform. Everything below
// is integer or IEEE-754 double arithmetic with no standard-library
// distributions (std distributions are not bit-reproducible across
// implementations), so these values must never change — a diff here means
// the seeding chain broke, and every recorded seed in CHANGES/CI history
// silently points at different inputs.

#include <cstdint>

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "gen/rng.hpp"

namespace reconf {
namespace {

TEST(RngGolden, SplitMix64ReferenceVectors) {
  // First outputs for seed 0 — the published splitmix64 test vector.
  SplitMix64 reference(0);
  EXPECT_EQ(reference.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(reference.next(), 0x6E789E6AA1B965F4ull);

  SplitMix64 seeded(0x5EED);
  EXPECT_EQ(seeded.next(), 0x09F1FD9D03F0A9B4ull);
  EXPECT_EQ(seeded.next(), 0x553274161BBF8475ull);
}

TEST(RngGolden, DeriveSeedIsStable) {
  EXPECT_EQ(derive_seed(0x5EED, 7), 0x7DF062785857D7B7ull);
  // Stream separation: neighbours and distinct masters never collide.
  EXPECT_NE(derive_seed(0x5EED, 7), derive_seed(0x5EED, 8));
  EXPECT_NE(derive_seed(0x5EED, 7), derive_seed(0x5EEE, 7));
}

TEST(RngGolden, XoshiroIntegerStreamIsStable) {
  Xoshiro256ss rng(0x5EED);
  EXPECT_EQ(rng.next(), 0xEF33F17055244B74ull);
  EXPECT_EQ(rng.next(), 0xE1F591112FB5051Bull);
}

TEST(RngGolden, XoshiroDoubleDrawsAreBitExact) {
  Xoshiro256ss rng(0x5EED);
  // EXPECT_EQ (not NEAR): uniform01 is a single multiply of an integer by a
  // power of two, exact in IEEE-754 on every conforming platform.
  EXPECT_EQ(rng.uniform01(), 0.9343863391160464);
  EXPECT_EQ(rng.uniform(5.0, 20.0), 18.239799499929727);
}

TEST(RngGolden, XoshiroUniformIntIsStable) {
  Xoshiro256ss rng(0x5EED);
  rng.uniform01();
  rng.uniform(5.0, 20.0);
  EXPECT_EQ(rng.uniform_int(1, 100), 47);
  EXPECT_EQ(rng.uniform_int(1, 100), 84);
  EXPECT_EQ(rng.uniform_int(1, 100), 37);
}

TEST(RngGolden, GeneratedTasksetIsBitIdentical) {
  // End-to-end pin across the whole generation path (period draw, deadline
  // ratio, area, utilization draw, U_S retargeting): the exact taskset a
  // fuzz or sweep seed names.
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(4);
  req.target_system_util = 40.0;
  req.seed = 0x901D;
  const auto ts = gen::generate_with_retries(req);
  ASSERT_TRUE(ts.has_value());

  const Ticks expected[4][3] = {
      {115, 1608, 1608}, {181, 1169, 1169}, {337, 1880, 1880}, {126, 552, 552}};
  const Area expected_area[4] = {49, 44, 93, 57};
  ASSERT_EQ(ts->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*ts)[i].wcet, expected[i][0]) << "task " << i;
    EXPECT_EQ((*ts)[i].deadline, expected[i][1]) << "task " << i;
    EXPECT_EQ((*ts)[i].period, expected[i][2]) << "task " << i;
    EXPECT_EQ((*ts)[i].area, expected_area[i]) << "task " << i;
  }
}

TEST(RngGolden, PeriodChoicesDrawFromTheListOnly) {
  gen::GenRequest req;
  req.profile = gen::GenProfile::unconstrained(16);
  req.profile.period_choices = {20, 40, 80, 160};
  req.seed = 0xC0DE;
  const auto ts = gen::generate(req);
  ASSERT_TRUE(ts.has_value());
  for (const Task& t : *ts) {
    EXPECT_TRUE(t.period == 20 || t.period == 40 || t.period == 80 ||
                t.period == 160)
        << t.period;
  }
}

}  // namespace
}  // namespace reconf
